"""ONOS faults: database locking, master election, link detection, PENDING_ADD."""

from __future__ import annotations

from typing import Optional

from repro.core.alarms import AlarmReason
from repro.datastore.caches import SWITCHESDB
from repro.faults.base import FaultClass, FaultScenario
from repro.harness.experiment import Experiment


class OnosDatabaseLockFault(FaultScenario):
    """ONOS database locking (§III-B, T1).

    "Clustered ONOS controllers occasionally reject switches' attempts to
    connect ... causing the replicas to encounter a 'failed to obtain lock'
    error from their distributed graph database."

    The faulty controller's lock manager refuses SwitchesDB writes, so a
    fresh switch connect elicits *no* externalization at the primary while
    the replicated FEATURES_REPLY makes every secondary capture the switch
    write — the validator times the trigger out and, from the lack of taint
    on the missing response, blames the primary (§VII-A1).
    """

    name = "onos-database-locking"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.PRIMARY_OMISSION,)

    def __init__(self, faulty_controller: str = "c1", new_dpid: int = 900):
        self.faulty_controller = faulty_controller
        self.new_dpid = new_dpid
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)

        def failing_lock(cache: str, key) -> bool:
            return cache != SWITCHESDB

        controller.store.lock_manager = failing_lock

    def trigger(self, experiment: Experiment) -> None:
        """A new switch connects, mastered by the faulty controller."""
        switch = experiment.topology.add_switch(self.new_dpid)
        experiment.cluster.wire_switch(switch, master=self.faulty_controller)
        if experiment.jury is not None:
            experiment.jury.attach_new_proxies()


class OnosMasterElectionFault(FaultScenario):
    """ONOS master election (§III-B, T1).

    The link-liveness master is the governing controller with the higher
    election id. After the old master reboots with a *lower* id while the
    surviving controller's view of election ids is stale, both governing
    controllers conclude they are not responsible — the primary writes
    nothing on the next LLDP while the up-to-date shadow replicas (acting as
    the primary) do, and consensus flags the divergence (§VII-A1).
    """

    name = "onos-master-election"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.PRIMARY_OMISSION,
                        AlarmReason.CONSENSUS_MISMATCH)

    def __init__(self, dpid_a: int = 1, dpid_b: int = 2):
        self.dpid_a = dpid_a
        self.dpid_b = dpid_b
        self.expected_offender: Optional[str] = None

    def inject(self, experiment: Experiment) -> None:
        cluster = experiment.cluster
        master_a = cluster.master_of(self.dpid_a)
        master_b = cluster.master_of(self.dpid_b)
        controller_a = cluster.controller(master_a)
        controller_b = cluster.controller(master_b)
        # Identify the current liveness master (higher election id) and
        # reboot it with an id *below* its peer's.
        if controller_a.election_id >= controller_b.election_id:
            winner, loser = controller_a, controller_b
        else:
            winner, loser = controller_b, controller_a
        stale_id = winner.election_id
        winner.crash()
        winner.reboot(election_id=loser.election_id - 1)
        cluster.set_master(  # it resumes mastership of its switch
            self.dpid_a if winner is controller_a else self.dpid_b, winner.id)
        # The peer's *belief* about the rebooted controller is stale: it
        # still thinks the old (high) id is in force, so it defers liveness
        # tracking — while the cluster registry (used by shadow replicas)
        # has the new id, under which the peer IS responsible.
        loser.app("topology").known_election_ids[winner.id] = stale_id
        self.expected_offender = loser.id
        # Force the next LLDP round to re-decide the edge writes.
        self._purge_edge(experiment)

    def _purge_edge(self, experiment: Experiment) -> None:
        """Make the link's EdgesDB entries stale so rediscovery must write."""
        link = experiment.topology.link_between(self.dpid_a, self.dpid_b)
        if link is not None:
            link.fail()
            experiment.sim.schedule(5.0, link.restore)
        from repro.datastore.caches import EDGESDB

        for controller in experiment.cluster.controllers.values():
            edges = controller.store.caches.get(EDGESDB, {})
            for key in list(edges):
                _, src_dpid, _, dst_dpid, _ = key
                if {src_dpid, dst_dpid} == {self.dpid_a, self.dpid_b}:
                    del edges[key]

    def trigger(self, experiment: Experiment) -> None:
        """Nothing to do — the periodic LLDP probes are the trigger."""

    def settle_ms(self, experiment: Experiment) -> float:
        lldp = max(c.profile.lldp_period_ms
                   for c in experiment.cluster.controllers.values())
        return 2 * lldp + 4.0 * experiment.validator.timeout.current() + 200.0


class LinkDetectionInconsistencyFault(FaultScenario):
    """ONOS link detection inconsistent (Appendix 2, T1).

    "ONOS sometimes fails to detect all links ... likely due to threading
    conflicts": the faulty controller's topology app silently skips edge
    writes. On rediscovery after a link event, the primary externalizes
    nothing while shadow replicas capture the edge write.
    """

    name = "onos-link-detection-inconsistency"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.PRIMARY_OMISSION,
                        AlarmReason.CONSENSUS_MISMATCH)

    def __init__(self, dpid_a: int = 2, dpid_b: int = 3):
        self.dpid_a = dpid_a
        self.dpid_b = dpid_b
        self.expected_offender: Optional[str] = None

    def inject(self, experiment: Experiment) -> None:
        cluster = experiment.cluster
        # The controller that would write this edge is the liveness master.
        master_a = cluster.controller(cluster.master_of(self.dpid_a))
        master_b = cluster.controller(cluster.master_of(self.dpid_b))
        faulty = master_a if master_a.election_id >= master_b.election_id else master_b
        self.expected_offender = faulty.id
        app = faulty.app("topology")
        original = app.handle_packet_in

        def dropping_handler(message, ctx):
            packet = message.packet
            if (packet is not None and packet.is_lldp and not ctx.shadow):
                return True  # "thread conflict": the edge write is lost
            return original(message, ctx)

        app.handle_packet_in = dropping_handler

    def trigger(self, experiment: Experiment) -> None:
        """A link event forces rediscovery of the edge."""
        from repro.datastore.caches import EDGESDB

        link = experiment.topology.link_between(self.dpid_a, self.dpid_b)
        if link is not None:
            link.fail()
            experiment.sim.schedule(5.0, link.restore)
        for controller in experiment.cluster.controllers.values():
            edges = controller.store.caches.get(EDGESDB, {})
            for key in list(edges):
                _, src_dpid, _, dst_dpid, _ = key
                if {src_dpid, dst_dpid} == {self.dpid_a, self.dpid_b}:
                    del edges[key]

    def settle_ms(self, experiment: Experiment) -> float:
        lldp = max(c.profile.lldp_period_ms
                   for c in experiment.cluster.controllers.values())
        return 2 * lldp + 4.0 * experiment.validator.timeout.current() + 200.0


class PendingAddFault(FaultScenario):
    """ONOS flow rules stuck in PENDING_ADD (Appendix 4, T2).

    The switch misbehaves for a particular technology and never installs the
    rule; store/switch comparison keeps the rule in PENDING_ADD through
    every reconciliation attempt. A stranded-flow policy flags it.
    """

    name = "onos-pending-add"
    fault_class = FaultClass.T2
    expected_reasons = (AlarmReason.POLICY_VIOLATION,)

    def __init__(self, dpid: int = 4):
        self.dpid = dpid
        self.expected_offender: Optional[str] = None

    def inject(self, experiment: Experiment) -> None:
        switch = experiment.topology.switches[self.dpid]
        # The switch silently ignores installs (optical-technology quirk).
        switch._handle_flow_mod = lambda message: None
        self.expected_offender = experiment.cluster.master_of(self.dpid)

    def trigger(self, experiment: Experiment) -> None:
        """Open a connection whose path installs a rule on the bad switch."""
        hosts = experiment.topology.host_list()
        src = next(h for h in hosts
                   if experiment.topology.host_location(h)[0] == self.dpid)
        dst = next(h for h in hosts if h is not src)
        src.open_connection(dst)

    def settle_ms(self, experiment: Experiment) -> float:
        controller = experiment.cluster.controller(self.expected_offender)
        reconcile = controller.profile.flow_reconcile_delay_ms
        return 6 * reconcile + 4.0 * experiment.validator.timeout.current() + 200.0
