"""ODL faults: FLOW_MOD drops, incorrect FLOW_MODs, deletion/instantiation failures."""

from __future__ import annotations

from typing import Optional

from repro.core.alarms import AlarmReason
from repro.datastore.caches import FLOWSDB, flow_key, flow_value
from repro.faults.base import FaultClass, FaultScenario
from repro.harness.experiment import Experiment
from repro.openflow.actions import ActionOutput
from repro.openflow.constants import FlowModCommand, FlowState
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod


class OdlFlowModDropFault(FaultScenario):
    """ODL FLOW_MOD drops between MD-SAL and the OpenFlow plugin (§III-B, T2).

    "Since there is no control over the order of these egress calls,
    sporadically FLOW_MOD messages may be lost when writing them to the
    network, thereby creating inconsistency between the FLOW_MOD cache and
    the network." The cache write replicates cluster-wide; the validator's
    sanity check sees a promised FLOW_MOD with no network write (§VII-A1).
    """

    name = "odl-flow-mod-drop"
    fault_class = FaultClass.T2
    expected_reasons = (AlarmReason.SANITY_MISMATCH,)

    def __init__(self, faulty_controller: str = "c1", dpid: Optional[int] = None):
        self.faulty_controller = faulty_controller
        self.dpid = dpid
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        controller.egress_drop_prob = 1.0

    def trigger(self, experiment: Experiment) -> None:
        """An administrator proactively installs a flow via the controller."""
        controller = experiment.cluster.controller(self.faulty_controller)
        dpid = self.dpid if self.dpid is not None else self._mastered_dpid(experiment)
        match = Match.for_destination("aa:bb:cc:00:00:01")
        actions = (ActionOutput(1),)

        def admin_action(ctx):
            controller.cache_write(
                FLOWSDB, flow_key(dpid, match, 200),
                flow_value(dpid, match, actions, 200, state=FlowState.PENDING_ADD),
                ctx=ctx)
            controller.send_flow_mod(FlowMod(
                dpid=dpid, command=FlowModCommand.ADD, match=match,
                actions=actions, priority=200), ctx)

        controller.run_internal("admin-flow-install", admin_action)

    def _mastered_dpid(self, experiment: Experiment) -> int:
        for dpid, master in sorted(experiment.cluster.mastership.items()):
            if master == self.faulty_controller:
                return dpid
        return next(iter(sorted(experiment.topology.switches)))


class OdlIncorrectFlowModFault(FaultScenario):
    """ODL incorrect FLOW_MOD silently accepted by OF 1.0 switches (§III-B, T3).

    The match sets network-layer fields without ``dl_type``; the switch
    silently discards them, desynchronizing switch and store. The cache and
    network writes are *consistent with each other*, so consensus and sanity
    pass — only the administrator's match-hierarchy policy catches it
    (§VII-A1: "we use a policy that specifies the correct hierarchy of match
    fields in the cache entry").
    """

    name = "odl-incorrect-flow-mod"
    fault_class = FaultClass.T3
    expected_reasons = (AlarmReason.POLICY_VIOLATION,)

    def __init__(self, faulty_controller: str = "c1", dpid: Optional[int] = None):
        self.faulty_controller = faulty_controller
        self.dpid = dpid
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        """Nothing to arm — the fault is the malformed admin request itself."""

    def trigger(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        dpid = self.dpid if self.dpid is not None else _mastered_dpid(
            experiment, self.faulty_controller)
        # nw_src/nw_dst without dl_type: violates the OF 1.0 prerequisite
        # hierarchy; the switch will silently strip these fields.
        bad_match = Match(nw_src="10.0.0.1", nw_dst="10.0.0.2")
        actions = (ActionOutput(1),)

        def admin_action(ctx):
            controller.cache_write(
                FLOWSDB, flow_key(dpid, bad_match, 300),
                flow_value(dpid, bad_match, actions, 300,
                           state=FlowState.PENDING_ADD),
                ctx=ctx)
            controller.send_flow_mod(FlowMod(
                dpid=dpid, command=FlowModCommand.ADD, match=bad_match,
                actions=actions, priority=300), ctx)

        controller.run_internal("admin-bad-flow-install", admin_action)


class FlowDeletionFailureFault(FaultScenario):
    """ODL flow deletion failure (Appendix 1, T1).

    With many flows in MD-SAL, an administrator's REST deletion locks the
    controller up. The replicated REST trigger makes secondaries capture the
    deletion while the primary omits its response.
    """

    name = "odl-flow-deletion-failure"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.PRIMARY_OMISSION,)

    def __init__(self, faulty_controller: str = "c1"):
        self.faulty_controller = faulty_controller
        self.expected_offender = faulty_controller
        self._target: Optional[tuple] = None

    def inject(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        dpid = _mastered_dpid(experiment, self.faulty_controller)
        match = Match.for_destination("aa:bb:cc:00:00:77")
        # Pre-install a legitimate rule that the admin will try to delete.
        forwarding = controller.app("forwarding")
        controller.run_internal(
            "pre-install",
            lambda ctx: forwarding.install_flow(
                dpid, match, (ActionOutput(1),), ctx, priority=150))
        self._target = (dpid, match)
        # The lock-up: delete_flow requests stall inside the controller.
        original = controller.ingress_rest

        def locking_rest(request, ctx=None):
            if request.operation == "delete_flow":
                controller.rest_requests += 1
                return  # request accepted (REST says OK) but never processed
            original(request, ctx=ctx)

        controller.ingress_rest = locking_rest

    def trigger(self, experiment: Experiment) -> None:
        dpid, match = self._target
        experiment.northbound.delete_flow(self.faulty_controller, dpid, match,
                                          priority=150)


class FlowInstantiationFailureFault(FaultScenario):
    """ODL Helium flow instantiation failure (Appendix 3, T2).

    "The API returned success. However, no FLOW_MOD messages were sent from
    the controller and no flows were installed": the data-store write
    happens, the egress never does. Secondaries receive the cache updates;
    no FLOW_MOD appears on the network.
    """

    name = "odl-flow-instantiation-failure"
    fault_class = FaultClass.T2
    # The trigger is external (REST), so the shadow replicas captured the
    # FLOW_MOD the primary failed to emit: consensus catches the divergence
    # before sanity even runs. Internal variants surface as sanity failures.
    expected_reasons = (AlarmReason.CONSENSUS_MISMATCH,
                        AlarmReason.SANITY_MISMATCH)

    def __init__(self, faulty_controller: str = "c1"):
        self.faulty_controller = faulty_controller
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        controller.egress_drop_prob = 1.0

    def trigger(self, experiment: Experiment) -> None:
        dpid = _mastered_dpid(experiment, self.faulty_controller)
        experiment.northbound.add_flow(
            self.faulty_controller, dpid,
            Match.for_destination("aa:bb:cc:00:00:99"),
            (ActionOutput(1),), priority=160)


def _mastered_dpid(experiment: Experiment, controller_id: str) -> int:
    for dpid, master in sorted(experiment.cluster.mastership.items()):
        if master == controller_id:
            return dpid
    return next(iter(sorted(experiment.topology.switches)))
