"""Generic distributed-system failure classes (§III-B).

An SDN HA cluster is susceptible to crash (fail-stop), response omission,
timing, response (incorrect value), and arbitrary failures. JURY detects
all but pure crashes directly; crashes surface as response omissions.
These scenarios inject each class in controller-agnostic form.
"""

from __future__ import annotations

from typing import Optional

from repro.core.alarms import AlarmReason
from repro.datastore.caches import HOSTSDB
from repro.faults.base import FaultClass, FaultScenario
from repro.harness.experiment import Experiment


def _hosts_for_primary(experiment: Experiment, controller_id: str):
    """A (src, dst) host pair whose first-hop switch is mastered by
    ``controller_id`` — so the PACKET_IN's primary is the faulty node."""
    topology = experiment.topology
    hosts = topology.host_list()
    for src in hosts:
        dpid, _ = topology.host_location(src)
        if experiment.cluster.master_of(dpid) == controller_id:
            dst = next(h for h in hosts if h is not src)
            return src, dst
    return hosts[0], hosts[1]


class CrashFault(FaultScenario):
    """Fail-stop: the controller dies; its triggers elicit no responses.

    Reported as a response omission — "JURY ... can provide detection for
    all but crash failures, which would be reported as response omissions."
    """

    name = "generic-crash"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.PRIMARY_OMISSION,)

    def __init__(self, faulty_controller: str = "c1"):
        self.faulty_controller = faulty_controller
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        controller.alive = False  # crash without failover re-wiring: the
        # proxy still points at the dead primary, as right after a crash

    def trigger(self, experiment: Experiment) -> None:
        src, dst = _hosts_for_primary(experiment, self.faulty_controller)
        src.open_connection(dst)


class ResponseOmissionFault(FaultScenario):
    """The controller silently drops (some) trigger processing."""

    name = "generic-response-omission"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.PRIMARY_OMISSION,)

    def __init__(self, faulty_controller: str = "c2"):
        self.faulty_controller = faulty_controller
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        original = controller.ingress_packet_in

        def omitting_ingress(message, ctx=None):
            if ctx is None or not ctx.shadow:
                controller.packet_ins_received += 1
                return  # the response is omitted
            original(message, ctx=ctx)

        controller.ingress_packet_in = omitting_ingress

    def trigger(self, experiment: Experiment) -> None:
        src, dst = _hosts_for_primary(experiment, self.faulty_controller)
        src.open_connection(dst)


class TimingFault(FaultScenario):
    """The controller responds, but far too late (memory bloat, GC storms).

    Its responses miss the validation timeout; the decision fires on the
    timer with the primary's response absent.
    """

    name = "generic-timing"
    fault_class = FaultClass.T1
    # The slow primary's cache event still replicates through the store (the
    # peers relay it), so what the validator misses at the timeout is the
    # primary's own relay and its network write: detection surfaces as a
    # consensus mismatch (replicas captured the FLOW_MOD the primary has not
    # yet emitted), a sanity mismatch, or a primary omission — whichever
    # response is latest past the deadline.
    expected_reasons = (AlarmReason.PRIMARY_OMISSION,
                        AlarmReason.SANITY_MISMATCH,
                        AlarmReason.CONSENSUS_MISMATCH)

    def __init__(self, faulty_controller: str = "c3", slowdown: float = 200.0):
        self.faulty_controller = faulty_controller
        self.slowdown = slowdown
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        controller.profile.jitter_median_ms *= self.slowdown

    def trigger(self, experiment: Experiment) -> None:
        src, dst = _hosts_for_primary(experiment, self.faulty_controller)
        src.open_connection(dst)


class StoreDesyncFault(FaultScenario):
    """Cluster nodes out of sync (the intro's operational-fault examples:
    nodes desynchronize under load, fail to re-sync, display different data
    depending on which node is hit).

    The faulty replica stops applying remote store events, so its local
    caches freeze while the cluster moves on. Per-trigger consensus
    *deliberately* excuses a stale view (indistinguishable from transient
    asynchrony, §IV-C); the validator's per-controller state tracking —
    Algorithm 1's Ψid, extended with digest progress — catches the
    persistent lag and raises a STALE_REPLICA alarm.
    """

    name = "generic-store-desync"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.STALE_REPLICA,)

    def __init__(self, faulty_controller: str = "c2",
                 staleness_threshold: int = 100):
        self.faulty_controller = faulty_controller
        self.staleness_threshold = staleness_threshold
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        node = experiment.cluster.controller(self.faulty_controller).store
        node.apply_remote = lambda event: None  # replication silently lost
        experiment.validator.staleness_threshold = self.staleness_threshold

    def trigger(self, experiment: Experiment) -> None:
        """Ordinary cluster traffic; the frozen replica's digest stalls."""
        from repro.workloads.traffic import TrafficDriver

        driver = TrafficDriver(
            experiment.sim, experiment.topology,
            packet_in_rate_per_s=1500.0, duration_ms=800.0,
            seed_label=f"desync/{self.faulty_controller}")
        driver.start()

    def settle_ms(self, experiment: Experiment) -> float:
        return 800.0 + 4.0 * experiment.validator.timeout.current() + 500.0


class ResponseCorruptionFault(FaultScenario):
    """Incorrect-value response: the controller writes corrupted entries.

    A host-location write is flipped to a wrong attachment point; shadow
    replicas write the correct one, and consensus flags the primary.
    """

    name = "generic-response-corruption"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.CONSENSUS_MISMATCH,)

    def __init__(self, faulty_controller: str = "c1"):
        self.faulty_controller = faulty_controller
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        original = controller.cache_write

        def corrupting_write(cache, key, value, ctx, op=None):
            if cache == HOSTSDB and not ctx.shadow and isinstance(value, dict):
                value = dict(value)
                value["port"] = value.get("port", 0) + 7  # wrong location
            original(cache, key, value, ctx, op=op)

        controller.cache_write = corrupting_write

    def trigger(self, experiment: Experiment) -> None:
        """A brand-new host ARPs: a host-discovery write at the primary."""
        topology = experiment.topology
        target_dpid = None
        for dpid, master in sorted(experiment.cluster.mastership.items()):
            if master == self.faulty_controller and dpid in topology.switches:
                target_dpid = dpid
                break
        host = topology.add_host(f"hx-{self.name}")
        topology.add_link(topology.switches[target_dpid], host)
        other = topology.host_list()[0]
        host.send_arp_request(other.ip)
