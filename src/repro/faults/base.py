"""Fault-scenario framework.

A :class:`FaultScenario` is the unit the paper's "driver program" injects:
it arms a fault on a chosen controller (:meth:`inject`), causes the trigger
that elicits the faulty behaviour (:meth:`trigger`), and declares what the
validator is expected to raise. :func:`run_scenario` executes one scenario
against a built experiment and reports whether JURY detected the fault, how
fast, and whether attribution named the right controller.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.alarms import Alarm, AlarmReason
from repro.harness.experiment import Experiment


class FaultClass(enum.Enum):
    """Table 1's fault taxonomy."""

    T1 = "T1"  # reactive: wrong cache and/or network on an external trigger
    T2 = "T2"  # proactive: cache and network inconsistent with each other
    T3 = "T3"  # proactive: cache = network but both wrong (policy-only)


class FaultScenario(ABC):
    """One injectable fault plus the stimulus that elicits it."""

    #: Human-readable scenario name.
    name: str = "fault"
    #: Table 1 class.
    fault_class: FaultClass = FaultClass.T1
    #: Alarm reasons that count as detection for this scenario.
    expected_reasons: Sequence[AlarmReason] = ()
    #: Controller that should be blamed (None = attribution not asserted).
    expected_offender: Optional[str] = None

    @abstractmethod
    def inject(self, experiment: Experiment) -> None:
        """Arm the fault (corrupt a controller, set a drop probability...)."""

    @abstractmethod
    def trigger(self, experiment: Experiment) -> None:
        """Cause the event that elicits the faulty behaviour."""

    def settle_ms(self, experiment: Experiment) -> float:
        """How long to run after the trigger before judging detection."""
        return 4.0 * experiment.validator.timeout.current() + 200.0


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    scenario: str
    detected: bool
    detection_ms: Optional[float]
    matching_alarms: List[Alarm] = field(default_factory=list)
    attribution_correct: Optional[bool] = None
    all_alarms: List[Alarm] = field(default_factory=list)


def run_scenario(experiment: Experiment, scenario: FaultScenario) -> ScenarioResult:
    """Inject, trigger, settle, and judge one fault scenario.

    Detection time is measured from the trigger instant to the first
    matching alarm — the quantity the paper reports as "detection within
    ~129 ms for ONOS and ~700 ms for ODL" (§VII-A1).
    """
    validator = experiment.validator
    alarms_before = len(validator.alarms)
    scenario.inject(experiment)
    trigger_time = experiment.sim.now
    scenario.trigger(experiment)
    experiment.run(scenario.settle_ms(experiment))

    new_alarms = validator.alarms[alarms_before:]
    matching = [a for a in new_alarms
                if not scenario.expected_reasons
                or a.reason in tuple(scenario.expected_reasons)]
    detected = bool(matching)
    detection_ms = None
    attribution = None
    if detected:
        first = min(matching, key=lambda a: a.raised_at)
        detection_ms = first.raised_at - trigger_time
        if scenario.expected_offender is not None:
            attribution = any(
                a.offending_controller == scenario.expected_offender
                for a in matching)
    return ScenarioResult(
        scenario=scenario.name,
        detected=detected,
        detection_ms=detection_ms,
        matching_alarms=matching,
        attribution_correct=attribution,
        all_alarms=list(new_alarms),
    )
