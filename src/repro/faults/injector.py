"""The fault driver: injects fault combinations and measures detection.

Reproduces §VII-A1's methodology: "We wrote a driver program to inject
combination of the faults in different parts of the network, and used JURY
to validate controller actions in the worst case for cluster size n = 7,
i.e., full replication (k = 6) and two faulty replicas (m = 2). We repeated
the experiment 10 times and in each case the JURY-enhanced controller
successfully detected the fault."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.faults.base import FaultScenario, ScenarioResult, run_scenario
from repro.harness.experiment import Experiment
from repro.policy import (
    PolicyEngine,
    match_hierarchy_policy,
    no_internal_cache_changes,
    stranded_flow_policy,
)


def default_policy_engine() -> PolicyEngine:
    """The administrator policy set used throughout the fault experiments."""
    return PolicyEngine([
        match_hierarchy_policy(),
        stranded_flow_policy(),
        no_internal_cache_changes("EdgesDB"),
    ])


@dataclass
class DriverReport:
    """Aggregate of repeated scenario runs."""

    scenario: str
    runs: int
    detected: int
    detection_times_ms: List[float] = field(default_factory=list)
    attribution_correct: int = 0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.runs if self.runs else 0.0

    @property
    def max_detection_ms(self) -> Optional[float]:
        return max(self.detection_times_ms) if self.detection_times_ms else None


class FaultDriver:
    """Runs fault scenarios repeatedly over freshly built experiments."""

    def __init__(self, experiment_factory: Callable[[int], Experiment],
                 warmup: bool = True):
        """``experiment_factory(seed)`` must build a ready-to-run experiment
        (with JURY deployed and, if needed, a northbound API)."""
        self.experiment_factory = experiment_factory
        self.warmup = warmup

    def run(self, scenario_factory: Callable[[], FaultScenario],
            repetitions: int = 10, base_seed: int = 100) -> DriverReport:
        """Run one scenario ``repetitions`` times on fresh clusters."""
        scenario_name = scenario_factory().name
        report = DriverReport(scenario=scenario_name, runs=repetitions,
                              detected=0)
        for run_index in range(repetitions):
            experiment = self.experiment_factory(base_seed + run_index)
            if self.warmup:
                experiment.warmup()
            scenario = scenario_factory()
            result = run_scenario(experiment, scenario)
            if result.detected:
                report.detected += 1
                if result.detection_ms is not None:
                    report.detection_times_ms.append(result.detection_ms)
                if result.attribution_correct:
                    report.attribution_correct += 1
        return report

    def run_suite(self, scenario_factories: Sequence[Callable[[], FaultScenario]],
                  repetitions: int = 10, base_seed: int = 100) -> List[DriverReport]:
        """Run a catalog of scenarios; one report per scenario."""
        return [self.run(factory, repetitions=repetitions,
                         base_seed=base_seed + 1000 * index)
                for index, factory in enumerate(scenario_factories)]
