"""The paper's three synthetic faults (§VII-A1): one per fault class."""

from __future__ import annotations

from typing import Optional

from repro.core.alarms import AlarmReason
from repro.datastore.caches import EDGESDB, FLOWSDB, edge_value, flow_key, flow_value
from repro.faults.base import FaultClass, FaultScenario
from repro.harness.experiment import Experiment
from repro.openflow.actions import ActionDrop, ActionOutput
from repro.openflow.constants import FlowModCommand, FlowState
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod


class LinkFailureFault(FaultScenario):
    """Synthetic T1: a faulty controller disables a critical link.

    "An LLDP PACKET_IN triggers an update for a new link ... However, a
    faulty controller incorrectly updates the LinksDB cache to disable a
    critical link." The shadow replicas write the correct alive=True entry;
    the primary's cache relay differs — consensus mismatch.
    """

    name = "synthetic-link-failure"
    fault_class = FaultClass.T1
    expected_reasons = (AlarmReason.CONSENSUS_MISMATCH,)

    def __init__(self, dpid_a: int = 1, dpid_b: int = 2):
        self.dpid_a = dpid_a
        self.dpid_b = dpid_b
        self.expected_offender: Optional[str] = None

    def inject(self, experiment: Experiment) -> None:
        cluster = experiment.cluster
        master_a = cluster.controller(cluster.master_of(self.dpid_a))
        master_b = cluster.controller(cluster.master_of(self.dpid_b))
        faulty = master_a if master_a.election_id >= master_b.election_id else master_b
        self.expected_offender = faulty.id
        app = faulty.app("topology")
        original_write = faulty.cache_write

        def corrupting_write(cache, key, value, ctx, op=None):
            if (cache == EDGESDB and not ctx.shadow
                    and isinstance(value, dict) and value.get("alive", False)):
                value = dict(value)
                value["alive"] = False  # the incorrect update
            original_write(cache, key, value, ctx, op=op)

        faulty.cache_write = corrupting_write
        self._app = app

    def trigger(self, experiment: Experiment) -> None:
        """Force the link to be rediscovered (a 'new link' LLDP update)."""
        link = experiment.topology.link_between(self.dpid_a, self.dpid_b)
        if link is not None:
            link.fail()
            experiment.sim.schedule(5.0, link.restore)
        for controller in experiment.cluster.controllers.values():
            edges = controller.store.caches.get(EDGESDB, {})
            for key in list(edges):
                _, src_dpid, _, dst_dpid, _ = key
                if {src_dpid, dst_dpid} == {self.dpid_a, self.dpid_b}:
                    del edges[key]

    def settle_ms(self, experiment: Experiment) -> float:
        lldp = max(c.profile.lldp_period_ms
                   for c in experiment.cluster.controllers.values())
        return 2 * lldp + 4.0 * experiment.validator.timeout.current() + 200.0


class UndesirableFlowModFault(FaultScenario):
    """Synthetic T2: the cached rule is correct, the emitted FLOW_MOD drops.

    "An administrator issues a FLOW_MOD ... correct flow rules are written
    to the cache. However, a faulty controller incorrectly modifies the flow
    rules and instead issues a FLOW_MOD that drops all packets." Sanity
    checking the network write against the cluster's cache updates flags it.
    """

    name = "synthetic-undesirable-flow-mod"
    fault_class = FaultClass.T2
    expected_reasons = (AlarmReason.SANITY_MISMATCH,)

    def __init__(self, faulty_controller: str = "c2", dpid: Optional[int] = None):
        self.faulty_controller = faulty_controller
        self.dpid = dpid
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        """Nothing to arm; the corruption happens in the emission below."""

    def trigger(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        dpid = self.dpid
        if dpid is None:
            for candidate, master in sorted(experiment.cluster.mastership.items()):
                if master == self.faulty_controller:
                    dpid = candidate
                    break
        match = Match.for_destination("aa:bb:cc:00:00:42")
        good_actions = (ActionOutput(1),)

        def admin_action(ctx):
            controller.cache_write(
                FLOWSDB, flow_key(dpid, match, 210),
                flow_value(dpid, match, good_actions, 210,
                           state=FlowState.PENDING_ADD),
                ctx=ctx)
            # The faulty controller swaps the actions for a drop-all.
            controller.send_flow_mod(FlowMod(
                dpid=dpid, command=FlowModCommand.ADD, match=match,
                actions=(ActionDrop(),), priority=210), ctx)

        controller.run_internal("admin-flow-install", admin_action)


class FaultyProactiveFault(FaultScenario):
    """Synthetic T3: a proactive write brings a critical link down.

    "An administrator or controller application incorrectly updates the
    LinksDB cache, which brings down a critical network link." Cache and
    network agree (there is no network side-effect at all), so only an
    administrator policy prohibiting proactive topology changes detects it.
    """

    name = "synthetic-faulty-proactive"
    fault_class = FaultClass.T3
    expected_reasons = (AlarmReason.POLICY_VIOLATION,)

    def __init__(self, faulty_controller: str = "c3",
                 dpid_a: int = 2, dpid_b: int = 3):
        self.faulty_controller = faulty_controller
        self.dpid_a = dpid_a
        self.dpid_b = dpid_b
        self.expected_offender = faulty_controller

    def inject(self, experiment: Experiment) -> None:
        """Nothing to arm; the faulty proactive write is the trigger."""

    def trigger(self, experiment: Experiment) -> None:
        controller = experiment.cluster.controller(self.faulty_controller)
        edges = controller.store.entries(EDGESDB)
        target_key = None
        for key in edges:
            _, src_dpid, _, dst_dpid, _ = key
            if {src_dpid, dst_dpid} == {self.dpid_a, self.dpid_b}:
                target_key = key
                break
        if target_key is None:
            target_key = ("edge", self.dpid_a, 1, self.dpid_b, 1)
        _, src_dpid, src_port, dst_dpid, dst_port = target_key
        controller.run_internal(
            "proactive-link-disable",
            lambda ctx: controller.cache_write(
                EDGESDB, target_key,
                edge_value(src_dpid, src_port, dst_dpid, dst_port, alive=False),
                ctx=ctx))
