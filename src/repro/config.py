"""The one configuration object behind every JURY construction path.

Deployment options used to accumulate as keyword arguments on three
different seams — ``JuryDeployment(...)``, ``build_experiment(...)``, and
the CLI's argparse plumbing — each forwarding a growing subset to the
next. :class:`JuryConfig` replaces that sprawl with a single frozen
dataclass; :meth:`repro.api.Jury.build` is the one entry point that
consumes it, and the legacy seams are thin deprecated shims that construct
a config and delegate.

The config is *declarative*: policy sets are named (resolved through
:data:`POLICY_SETS` only at build time), the timeout is a number unless an
explicit :class:`~repro.core.timeouts.TimeoutPolicy` object is supplied,
and observability is a pair of booleans. That keeps configs printable,
comparable, and safe to share between an experiment and its report.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ValidationError

#: Named administrator policy sets, resolved lazily at build time. The
#: callables import on demand so that constructing a config never pulls in
#: the policy/faults stack.
POLICY_SETS: Dict[str, Callable[[], object]] = {}


def register_policy_set(name: str, factory: Callable[[], object]) -> None:
    """Register a named policy set for :attr:`JuryConfig.policies`."""
    POLICY_SETS[name] = factory


def _default_policy_set():
    from repro.faults.injector import default_policy_engine
    return default_policy_engine()


register_policy_set("default", _default_policy_set)


@dataclass(frozen=True)
class JuryConfig:
    """Everything needed to deploy (and optionally host) a JURY instance.

    Validation core:

    * ``k`` — secondaries per trigger (``2k + 2`` expected responses).
    * ``timeout_ms`` / ``timeout`` — θτ as a number, or an explicit
      :class:`~repro.core.timeouts.TimeoutPolicy` overriding it.
    * ``pipeline`` — ``None`` for the sequential validator, else the shard
      count of the :class:`~repro.core.pipeline.ValidationPipeline`.
    * ``policies`` — named policy sets (see :data:`POLICY_SETS`);
      ``policy_engine`` is the explicit-object escape hatch.
    * ``state_aware`` / ``taint_classification`` — the ablation switches.

    Observability: ``trace`` wires a :class:`~repro.obs.Tracer` through the
    full validation path; ``metrics`` a
    :class:`~repro.obs.MetricsRegistry`; ``diagnose`` attaches alarm
    forensics; ``health`` replica health scoring + SLO monitoring;
    ``snapshot_interval_ms`` a periodic export sink on the pipeline flush
    path; ``obs_sample`` head-samples the observer stack 1-in-N;
    ``flight``/``flight_capacity`` the always-on flight recorder;
    ``wall_profile`` per-stage wall-clock worker profiling. All default
    off (the zero-cost path).

    Hosting shape (used when :meth:`repro.api.Jury.build` must assemble
    the testbed too): ``kind``, ``n``, ``switches``, ``topology``,
    ``seed``, ``with_northbound``.
    """

    #: ``None`` means a vanilla (non-JURY) cluster when hosting a full
    #: experiment; :meth:`repro.api.Jury.build` itself requires a k.
    k: Optional[int] = 6
    timeout_ms: Optional[float] = None
    timeout: Optional[object] = None
    pipeline: Optional[int] = None
    #: Execution backend for the sharded pipeline (repro.core.backends):
    #: ``serial`` (inline, the default), ``threads``, or ``processes``
    #: (real CPU parallelism via long-lived worker processes). Requires
    #: ``pipeline`` — the sequential validator has no shards to schedule.
    backend: str = "serial"
    seed: int = 0
    policies: Tuple[str, ...] = ()
    policy_engine: Optional[object] = None
    state_aware: bool = True
    taint_classification: bool = True
    replicate_handshakes: bool = True
    keep_results: bool = True
    validator_latency: Optional[object] = None
    queue_capacity: int = 1024
    batch_max: int = 512
    flush_interval_ms: float = 0.0
    #: Crash recovery (repro.core.checkpoint): automatically snapshot the
    #: validator/pipeline every this-many decided triggers. ``None`` off.
    #: The deployment hands snapshots to its ``on_checkpoint`` callback
    #: (or just keeps the newest one) for restore after a crash.
    checkpoint_every: Optional[int] = None

    # Observability.
    trace: bool = False
    metrics: bool = False
    #: Alarm forensics: attach an AlarmExplanation to every alarm
    #: (repro.obs.diagnose).
    diagnose: bool = False
    #: Replica health scoring + SLO monitoring (repro.obs.health).
    health: bool = False
    #: Periodic metrics/health snapshots on the pipeline flush path, every
    #: this-many simulated ms (repro.obs.export.SnapshotSink). ``None`` off.
    snapshot_interval_ms: Optional[float] = None
    #: Head-sample the observer stack 1-in-N per trigger (repro.obs.sampling).
    #: ``1`` observes everything; alarmed decisions are always recorded in
    #: full regardless of the head decision. Pure function of the trigger
    #: id, so sampled traces stay deterministic across engines and replays.
    obs_sample: int = 1
    #: Always-on flight recorder: fixed-size ring of recent decision/alarm/
    #: worker events, dumped on anomaly triggers (repro.obs.recorder).
    flight: bool = False
    #: Ring capacity (events retained) when ``flight`` is on.
    flight_capacity: int = 256
    #: Wall-clock per-stage worker profiling inside thread/process backend
    #: workers (repro.obs.profile). Distinct from the simulated-time
    #: tracer; requires ``metrics`` to land anywhere. No-op under
    #: ``serial`` (there is no worker to measure).
    wall_profile: bool = False

    # Hosting shape.
    kind: str = "onos"
    n: int = 7
    switches: int = 24
    topology: str = "linear"
    with_northbound: bool = False
    profile_overrides: Optional[Tuple[Tuple[str, object], ...]] = None

    # ------------------------------------------------------------------
    def __post_init__(self):
        if self.k is not None and self.k < 0:
            raise ValidationError(f"k must be >= 0: {self.k}")
        if self.pipeline is not None and self.pipeline < 1:
            raise ValidationError(
                f"pipeline shard count must be >= 1: {self.pipeline}")
        if (self.snapshot_interval_ms is not None
                and self.snapshot_interval_ms <= 0):
            raise ValidationError(
                f"snapshot_interval_ms must be positive: "
                f"{self.snapshot_interval_ms}")
        if isinstance(self.obs_sample, bool) or not isinstance(
                self.obs_sample, int) or self.obs_sample < 1:
            raise ValidationError(
                f"obs_sample must be an integer >= 1: {self.obs_sample!r}")
        if isinstance(self.flight_capacity, bool) or not isinstance(
                self.flight_capacity, int) or self.flight_capacity < 1:
            raise ValidationError(
                f"flight_capacity must be an integer >= 1: "
                f"{self.flight_capacity!r}")
        if self.checkpoint_every is not None and (
                isinstance(self.checkpoint_every, bool)
                or not isinstance(self.checkpoint_every, int)
                or self.checkpoint_every < 1):
            raise ValidationError(
                f"checkpoint_every must be an integer >= 1 or None: "
                f"{self.checkpoint_every!r}")
        from repro.core.backends import BACKEND_NAMES
        if self.backend not in BACKEND_NAMES:
            raise ValidationError(
                f"unknown backend {self.backend!r} "
                f"(expected one of: {', '.join(BACKEND_NAMES)})")
        if self.backend != "serial":
            if self.pipeline is None:
                raise ValidationError(
                    f"backend {self.backend!r} requires pipeline=N: the "
                    f"sequential validator has no shards to schedule")
            if self.timeout is not None:
                from repro.core.timeouts import StaticTimeout
                if not isinstance(self.timeout, StaticTimeout):
                    raise ValidationError(
                        f"backend {self.backend!r} requires a static "
                        f"timeout (adaptive policies couple shards "
                        f"through observe())")
        unknown = [name for name in self.policies if name not in POLICY_SETS]
        if unknown:
            raise ValidationError(
                f"unknown policy set(s): {', '.join(unknown)} "
                f"(registered: {', '.join(sorted(POLICY_SETS))})")

    def replace(self, **changes) -> "JuryConfig":
        """A copy with the given fields changed (configs are frozen)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Declarative round-trip (scenario specs, --config files, fuzz)
    # ------------------------------------------------------------------
    #: Fields that hold live objects rather than declarative values; they
    #: cannot round-trip through JSON and are rejected by to_dict/from_dict.
    _OBJECT_FIELDS = ("timeout", "policy_engine", "validator_latency")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JuryConfig":
        """Build a validated config from a plain dict (JSON-shaped).

        The single construction path for every serialized config source —
        scenario specs, CLI ``--config file.json``, the fuzz generator.
        Unknown keys fail with a did-you-mean suggestion (same contract as
        the policy linter's P603 vocabulary check); list values for tuple
        fields are normalised, so ``json.load`` output works directly.
        """
        if not isinstance(payload, dict):
            raise ValidationError(
                f"config payload must be a mapping, got "
                f"{type(payload).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs: Dict[str, object] = {}
        for key, value in payload.items():
            if key not in known:
                import difflib
                guess = difflib.get_close_matches(str(key), sorted(known),
                                                  n=1, cutoff=0.6)
                hint = f" (did you mean {guess[0]!r}?)" if guess else ""
                raise ValidationError(
                    f"unknown config key {key!r}{hint}")
            if key in cls._OBJECT_FIELDS and value is not None:
                raise ValidationError(
                    f"config key {key!r} holds a live object and cannot "
                    f"be loaded from a dict; use its declarative "
                    f"counterpart")
            if key == "policies" and isinstance(value, list):
                value = tuple(value)
            if key == "profile_overrides" and isinstance(value, list):
                value = tuple((k, v) for k, v in value)
            kwargs[key] = value
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, object]:
        """Declarative JSON-able dict; exact inverse of :meth:`from_dict`.

        Raises :class:`~repro.errors.ValidationError` when the config
        carries live objects (explicit timeout policy, policy engine,
        latency model) — those have no serial form by design.
        """
        carried = [name for name in self._OBJECT_FIELDS
                   if getattr(self, name) is not None]
        if carried:
            raise ValidationError(
                f"config holds non-serializable object field(s): "
                f"{', '.join(carried)}")
        payload: Dict[str, object] = {}
        for field_info in dataclasses.fields(self):
            value = getattr(self, field_info.name)
            if field_info.name in self._OBJECT_FIELDS:
                continue
            if isinstance(value, tuple):
                value = [list(item) if isinstance(item, tuple) else item
                         for item in value]
            payload[field_info.name] = value
        return payload

    # ------------------------------------------------------------------
    # Build-time resolution
    # ------------------------------------------------------------------
    @property
    def effective_timeout_ms(self) -> float:
        """The configured θτ in ms (paper defaults per controller kind)."""
        if self.timeout_ms is not None:
            return self.timeout_ms
        return 250.0 if self.kind == "onos" else 1200.0

    def build_timeout(self):
        """The :class:`TimeoutPolicy` this config describes."""
        if self.timeout is not None:
            return self.timeout
        from repro.core.timeouts import StaticTimeout
        return StaticTimeout(self.effective_timeout_ms)

    def build_policy_engine(self):
        """Resolve ``policy_engine`` / named ``policies`` to one engine."""
        if self.policy_engine is not None:
            return self.policy_engine
        if not self.policies:
            return None
        engines = [POLICY_SETS[name]() for name in self.policies]
        if len(engines) == 1:
            return engines[0]
        from repro.policy import PolicyEngine
        merged = []
        for engine in engines:
            merged.extend(engine.policies)
        return PolicyEngine(merged)

    def build_tracer(self):
        if not self.trace:
            return None
        from repro.obs.trace import Tracer
        return Tracer()

    def build_metrics(self):
        if not self.metrics:
            return None
        from repro.obs.metrics import MetricsRegistry
        return MetricsRegistry()

    def build_forensics(self):
        if not self.diagnose:
            return None
        from repro.obs.diagnose import AlarmForensics
        return AlarmForensics()

    def build_health(self):
        if not self.health:
            return None
        from repro.obs.health import ReplicaHealthTracker
        return ReplicaHealthTracker()

    def build_sampler(self):
        if self.obs_sample <= 1:
            return None
        from repro.obs.sampling import HeadSampler
        return HeadSampler(self.obs_sample)

    def build_flight_recorder(self):
        if not self.flight:
            return None
        from repro.obs.recorder import FlightRecorder
        return FlightRecorder(capacity=self.flight_capacity)

    def profile_overrides_dict(self) -> dict:
        return dict(self.profile_overrides or ())

    def describe(self) -> Dict[str, object]:
        """JSON-able summary for reports and CLI payloads."""
        return {
            "k": self.k,
            "timeout_ms": self.effective_timeout_ms,
            "pipeline": self.pipeline,
            "backend": self.backend,
            "seed": self.seed,
            "policies": list(self.policies)
            + (["<explicit>"] if self.policy_engine is not None else []),
            "state_aware": self.state_aware,
            "taint_classification": self.taint_classification,
            "trace": self.trace,
            "metrics": self.metrics,
            "diagnose": self.diagnose,
            "health": self.health,
            "snapshot_interval_ms": self.snapshot_interval_ms,
            "checkpoint_every": self.checkpoint_every,
            "obs_sample": self.obs_sample,
            "flight": self.flight,
            "wall_profile": self.wall_profile,
            "kind": self.kind,
            "n": self.n,
            "switches": self.switches,
            "topology": self.topology,
        }
