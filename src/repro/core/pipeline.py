"""Sharded, batched validation pipeline.

The sequential :class:`~repro.core.validator.Validator` processes every
relayed response through a single dispatch path; at production trigger rates
the validator is the throughput chokepoint (JURY §V, Fig. 4h). This module
shards Algorithm 1 across ``N`` validator workers:

* **Routing** — responses are partitioned by a *stable* hash of the trigger
  id (:func:`shard_of`), so every response for a trigger τ lands on the same
  shard and the per-trigger record Vτ/Nτ/θτ never crosses shards. The hash
  is CRC-32 of ``repr(τ)``, deliberately not the builtin ``hash`` (which is
  randomised per process for strings and would break replayability).
* **Batching** — each shard ingests from a bounded arrival queue, at most
  ``batch_max`` responses per flush. When a queue is full, arrivals divert
  to an explicit overflow ring; nothing is dropped, and the accounting
  (``enqueued == processed + still-queued``) is an asserted invariant of the
  property-based suite.
* **Ψid partitioning** — shards keep per-shard views of the per-controller
  state Ψid (their local digest-progress/cache-update contributions) and
  decide against the *merged* view, which the in-process pipeline realises
  as a shared mapping updated at ingest time; :meth:`ValidationPipeline.merged_view`
  reconciles the per-shard views against the merged view (a distributed
  deployment would ship the local views to the merge point instead).
  :meth:`ValidationPipeline.checkpoint` / :meth:`ValidationPipeline.restore`
  extend that to full crash recovery (``repro.core.checkpoint``,
  ``docs/recovery.md``).
* **Deterministic merge** — per-shard alarm streams drain into a single
  ordered stream: ``(decision time, trigger id)`` via
  :func:`repro.core.alarms.alarm_merge_key`. The differential suite
  (``tests/test_pipeline_differential.py``) asserts the merged stream is
  byte-identical to the sequential validator's on replayed workloads.

Decision logic is *shared*, not forked: shards inherit
:class:`~repro.core.validator.DecisionCore`, and the batch fast path
(:meth:`_Shard._fast_consensus`) only short-circuits a trigger when it can
prove ``evaluate_consensus`` would return the clean unanimous outcome —
anything else falls back to the sequential code path.

Equivalence contract: with ``flush_interval_ms=0`` micro-batches coincide
with same-timestamp arrivals and the pipeline is *byte-identical* to the
sequential validator (``docs/pipeline.md`` §equivalence); with a positive
flush interval decisions may land later in simulated time, so only verdict
equivalence (classification, alarm reasons, response counts) is guaranteed.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.controllers.context import restore_trigger_ids, snapshot_trigger_ids
from repro.core.alarms import Alarm, ValidationResult, alarm_merge_key
from repro.core.backends import resolve_backend
from repro.core.checkpoint import (
    Checkpoint,
    observe_checkpoint,
    observe_restore,
)
from repro.core.backends.frames import (
    EV_LATE,
    EV_PSI_CACHE,
    EV_PSI_PROGRESS,
    BatchFrame,
    DecisionRecord,
    VerdictFrame,
)
from repro.core.consensus import (
    ConsensusOutcome,
    _merge_network,
    unanimity_fast_consensus,
)
from repro.core.responses import Response, ResponseKind
from repro.core.timeouts import StaticTimeout, TimeoutPolicy
from repro.core.validator import (
    ControllerState,
    DecisionCore,
    digest_progress,
    restore_controller_states,
    snapshot_controller_states,
)
from repro.errors import CheckpointError
from repro.obs import trace as obs_trace
from repro.obs.sampling import active_sampler
from repro.obs.trace import active_tracer
from repro.sim.simulator import Simulator


def shard_of(trigger_id: Tuple, shards: int) -> int:
    """Stable shard index for a trigger id.

    CRC-32 over ``repr(τ)`` — stable across processes and Python versions,
    unlike ``hash(str)`` which is salted by PYTHONHASHSEED. All responses
    for one trigger must hash identically or Vτ would split across shards.
    """
    return zlib.crc32(repr(trigger_id).encode("utf-8")) % shards


@dataclass
class ShardStats:
    """Queue/batch/decision counters for one shard."""

    enqueued: int = 0
    processed: int = 0
    batches: int = 0
    batched_responses: int = 0
    max_batch: int = 0
    queue_high_water: int = 0
    overflow_enqueued: int = 0
    overflow_drained: int = 0
    #: Episodes of queue-full diversion (rising edges, not per response).
    backpressure_events: int = 0
    timer_wakeups: int = 0
    fastpath_decisions: int = 0
    slowpath_decisions: int = 0
    late_responses: int = 0
    decided: int = 0
    alarmed: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class PipelineStats:
    """Aggregated pipeline counters plus the per-shard breakdown."""

    shards: int
    responses_routed: int
    per_shard: List[Dict[str, int]]

    def total(self, counter: str) -> int:
        return sum(s[counter] for s in self.per_shard)

    def snapshot(self) -> Dict[str, object]:
        aggregate = {key: self.total(key) for key in self.per_shard[0]} \
            if self.per_shard else {}
        aggregate["max_batch"] = max(
            (s["max_batch"] for s in self.per_shard), default=0)
        aggregate["queue_high_water"] = max(
            (s["queue_high_water"] for s in self.per_shard), default=0)
        return {"shards": self.shards,
                "responses_routed": self.responses_routed,
                "aggregate": aggregate,
                "per_shard": self.per_shard}


_CACHE_UPDATE = ResponseKind.CACHE_UPDATE


@dataclass
class _ShardRecord:
    """Vτ / Nτ / θτ on a shard — no state snapshots (dead weight: the
    sequential validator drops them before evaluating consensus)."""

    responses: List[Response] = field(default_factory=list)
    count: int = 0
    first_at: float = 0.0
    deadline: float = 0.0
    decided: bool = False


class _Shard(DecisionCore):
    """One validator worker: bounded queue, batch ingest, coalesced timers."""

    def __init__(self, pipeline: "ValidationPipeline", index: int):
        self._init_core(pipeline.sim, pipeline.k,
                        policy_engine=pipeline.policy_engine,
                        mastership_lookup=pipeline.mastership_lookup,
                        state_aware=pipeline.state_aware,
                        taint_classification=pipeline.taint_classification,
                        state=pipeline.state,
                        tracer=pipeline.tracer, metrics=pipeline.metrics,
                        forensics=pipeline.forensics, health=pipeline.health,
                        sampler=pipeline.sampler, recorder=pipeline.recorder)
        self.pipeline = pipeline
        self.index = index
        self.timeout: TimeoutPolicy = pipeline.timeout
        self.queue: deque = deque()
        self.overflow: deque = deque()
        self.records: Dict[Tuple, _ShardRecord] = {}
        self._recently_decided: Dict[Tuple, float] = {}
        # Coalesced θτ timers: one heap + one scheduled wakeup per shard
        # instead of a sim event per trigger (the sequential validator's
        # schedule/cancel pair is pure overhead at high trigger rates).
        self._deadlines: List[Tuple[float, int, Tuple]] = []
        self._deadline_seq = itertools.count()
        self._wakeup = None
        self._wakeup_at = float("inf")
        self._flush_scheduled = False
        self.stats = ShardStats()
        # Frame-backend bookkeeping (unused on the serial/inline path):
        # monotone frame sequence and the worker's open-record mirror.
        self._frame_seq = itertools.count()
        self._remote_open = 0
        # Per-shard Ψid view: this shard's own contributions, reconciled
        # against the merged view at checkpoint (see ValidationPipeline).
        self.local_progress: Dict[str, int] = {}
        self.local_cache_updates: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Arrival side (called by the router)
    # ------------------------------------------------------------------
    def enqueue(self, arrived_at: float, response: Response) -> None:
        stats = self.stats
        stats.enqueued += 1
        if self.overflow or len(self.queue) >= self.pipeline.queue_capacity:
            # Once anything is in overflow, later arrivals must follow it or
            # the drain would reorder responses against arrival order.
            if not self.overflow:
                stats.backpressure_events += 1
            self.overflow.append((arrived_at, response))
            stats.overflow_enqueued += 1
        else:
            self.queue.append((arrived_at, response))
            if len(self.queue) > stats.queue_high_water:
                stats.queue_high_water = len(self.queue)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.sim.schedule(self.pipeline.flush_interval_ms, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        backend = self.pipeline.backend
        if not backend.inline:
            # Frame backend: collect → submit; the merge barrier (scheduled
            # at delay 0, so still within this simulated instant) replays
            # the verdict and drives the snapshot sink.
            backend.flush_shard(self)
            return
        self._process_available()
        sink = self.pipeline.snapshot_sink
        if sink is not None:
            # Periodic export rides the flush path: the sink snapshots at
            # most once per interval boundary, never schedules sim events.
            sink.observe(self.sim.now)

    def _process_available(self) -> None:
        """Ingest up to ``batch_max`` queued responses, oldest first.

        Before ingesting a response that arrived at time ``t``, any θτ
        deadline ≤ ``t`` fires first — the sequential validator would have
        fired that timer before this response arrived, and classification
        must match (the timer-expires-while-queued race of the regression
        suite). When the queue fully drains, deadlines up to the current
        simulated time fire as well.

        The per-response steps are the inlined body of
        :meth:`Validator.ingest <repro.core.validator.Validator.ingest>`
        minus the state snapshots (which the sequential path discards
        before evaluating consensus): late-drop → record create + θτ arm →
        count → append → Ψ update → decide at ``2k + 2``. Inlining with
        hoisted locals is what buys the batch path its throughput — this
        loop is the pipeline's innermost.
        """
        stats = self.stats
        pipeline = self.pipeline
        queue = self.queue
        overflow = self.overflow
        records = self.records
        recently_decided = self._recently_decided
        deadlines = self._deadlines
        state = self.state
        local_progress = self.local_progress
        local_cache_updates = self.local_cache_updates
        progress_memo = pipeline._progress_memo
        progress_of = pipeline._progress_of
        full_count = 2 * self.k + 2
        capacity = pipeline.queue_capacity
        budget = pipeline.batch_max
        batch = 0
        while budget > 0:
            if not queue and overflow:
                while overflow and len(queue) < capacity:
                    queue.append(overflow.popleft())
                    stats.overflow_drained += 1
            if not queue:
                break
            arrived_at, response = queue.popleft()
            batch += 1
            budget -= 1
            if deadlines and deadlines[0][0] <= arrived_at:
                self._fire_deadlines(arrived_at)
            tau = response.trigger_id
            if tau in recently_decided:
                stats.late_responses += 1
                if self.tracer is not None and self._sampled(tau):
                    self.tracer.emit(self.sim.now, tau, obs_trace.LATE_DROP,
                                     controller=response.controller_id)
                if self.metrics is not None and self._sampled(tau):
                    self.metrics.counter(
                        "validator_late_responses_total").inc()
                continue
            record = records.get(tau)
            if record is None:
                record = _ShardRecord(first_at=arrived_at)
                record.deadline = arrived_at + self.timeout.current()
                heapq.heappush(deadlines,
                               (record.deadline, next(self._deadline_seq),
                                tau))
                records[tau] = record
                self._arm_wakeup()
            record.count += 1
            record.responses.append(response)
            cid = response.controller_id
            if response.kind is _CACHE_UPDATE:
                entry = state.get(cid)
                if entry is None:
                    entry = state[cid] = ControllerState()
                entry.cache_updates += 1
                entry.last_entry = response.entry
                local_cache_updates[cid] = local_cache_updates.get(cid, 0) + 1
            digest = response.state_digest
            if digest:
                progress = progress_memo.get(digest)
                if progress is None and digest not in progress_memo:
                    progress = progress_of(digest)
                if progress is not None:
                    entry = state.get(cid)
                    if entry is None:
                        entry = state[cid] = ControllerState()
                    if progress > entry.digest_progress:
                        entry.digest_progress = progress
                    if progress > local_progress.get(cid, -1):
                        local_progress[cid] = progress
            if record.count >= full_count:
                self._decide(tau, record, timed_out=False)
        stats.processed += batch
        if batch:
            stats.batches += 1
            stats.batched_responses += batch
            if batch > stats.max_batch:
                stats.max_batch = batch
        if queue or overflow:
            # Budget exhausted: backpressure the remainder to the next flush
            # (same simulated instant at flush interval 0).
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self.sim.schedule(0.0, self._flush)
        else:
            self._fire_deadlines(self.sim.now)
            self._arm_wakeup()

    # ------------------------------------------------------------------
    # θτ deadlines
    # ------------------------------------------------------------------
    def _fire_deadlines(self, upto: float) -> None:
        while self._deadlines and self._deadlines[0][0] <= upto:
            _, _, tau = heapq.heappop(self._deadlines)
            record = self.records.get(tau)
            if record is None or record.decided:
                continue  # decided at full count; heap entry is stale
            self._decide(tau, record, timed_out=True)

    def _arm_wakeup(self) -> None:
        while self._deadlines and self._deadlines[0][2] not in self.records:
            heapq.heappop(self._deadlines)
        if not self._deadlines:
            if self._wakeup is not None:
                self._wakeup.cancel()
                self._wakeup = None
                self._wakeup_at = float("inf")
            return
        head = self._deadlines[0][0]
        if self._wakeup is not None:
            if self._wakeup_at <= head:
                return  # current wakeup fires first and will re-arm
            self._wakeup.cancel()
        self._wakeup = self.sim.schedule_at(head, self._on_wakeup)
        self._wakeup_at = head

    def _on_wakeup(self) -> None:
        self._wakeup = None
        self._wakeup_at = float("inf")
        self.stats.timer_wakeups += 1
        # Queued responses arrived before (or at) this deadline; ingest them
        # before letting any timer classify the trigger with fewer responses
        # than the sequential validator would have seen.
        self._process_available()

    # ------------------------------------------------------------------
    # Frame-backend path (repro.core.backends): the parent keeps queue and
    # overflow accounting plus everything that touches shared state; the
    # worker's ShardCore runs the per-response loop and ships back an
    # ordered event log this side replays.
    # ------------------------------------------------------------------
    def _collect_frame(self, wakeup: bool = False) -> Optional[BatchFrame]:
        """Drain up to ``batch_max`` queued responses into a frame.

        Mirrors the queue/overflow discipline of ``_process_available``
        exactly (refill from overflow only when the queue empties, count
        each refill as a drain, reschedule a flush for any remainder).
        Returns None when there is nothing to do — except for θτ wakeups,
        which always produce a frame so the worker fires due deadlines.
        """
        stats = self.stats
        queue = self.queue
        overflow = self.overflow
        capacity = self.pipeline.queue_capacity
        budget = self.pipeline.batch_max
        items = []
        while budget > 0:
            if not queue and overflow:
                while overflow and len(queue) < capacity:
                    queue.append(overflow.popleft())
                    stats.overflow_drained += 1
            if not queue:
                break
            items.append(queue.popleft())
            budget -= 1
        if not items and not wakeup:
            return None
        drained = not queue and not overflow
        if not drained and not self._flush_scheduled:
            # Budget exhausted: backpressure the remainder to the next
            # flush (same simulated instant at flush interval 0).
            self._flush_scheduled = True
            self.sim.schedule(0.0, self._flush)
        return BatchFrame(shard=self.index, seq=next(self._frame_seq),
                          now=self.sim.now, items=tuple(items),
                          drained=drained, wakeup=wakeup)

    def _merge_verdict(self, frame: BatchFrame, verdict: VerdictFrame) -> None:
        """Replay a worker's ordered event log against the shared state.

        Event order is the worker's processing order, which is the serial
        path's processing order for the same responses — so each decision's
        staleness/policy checks observe exactly the Ψ prefix the inline
        loop would have produced, and alarm/span emission order matches.
        """
        stats = self.stats
        for key, value in verdict.stats_delta.items():
            if key == "max_batch":
                if value > stats.max_batch:
                    stats.max_batch = value
            else:
                setattr(stats, key, getattr(stats, key) + value)
        state = self.state
        local_progress = self.local_progress
        local_cache_updates = self.local_cache_updates
        for event in verdict.events:
            tag = event[0]
            if tag == EV_PSI_CACHE:
                _, cid, entry_value = event
                entry = state.get(cid)
                if entry is None:
                    entry = state[cid] = ControllerState()
                entry.cache_updates += 1
                entry.last_entry = entry_value
                local_cache_updates[cid] = local_cache_updates.get(cid, 0) + 1
            elif tag == EV_PSI_PROGRESS:
                _, cid, progress = event
                entry = state.get(cid)
                if entry is None:
                    entry = state[cid] = ControllerState()
                if progress > entry.digest_progress:
                    entry.digest_progress = progress
                if progress > local_progress.get(cid, -1):
                    local_progress[cid] = progress
            elif tag == EV_LATE:
                _, tau, controller = event
                if self.tracer is not None and self._sampled(tau):
                    self.tracer.emit(self.sim.now, tau, obs_trace.LATE_DROP,
                                     controller=controller)
                if self.metrics is not None and self._sampled(tau):
                    self.metrics.counter(
                        "validator_late_responses_total").inc()
            else:  # EV_DECISION
                self._finalize_decision(event[1])
        self._remote_open = verdict.open_records
        self._remote_arm(verdict.next_deadline, frame.drained)

    def _finalize_decision(self, decision: DecisionRecord) -> None:
        """Run the observable half of a decision the worker classified.

        The worker ships classification + consensus outcome; this side
        reruns the unmodified check battery
        (:meth:`DecisionCore._post_consensus_alarms` — the sanity check is
        pure and cheap, staleness needs the merged Ψ, the policy engine
        lives only here) and emits results exactly as ``_decide`` does.
        """
        tau = decision.trigger_id
        responses = list(decision.responses)
        if self.tracer is not None and self._sampled(tau):
            self._trace_decide(tau, decision.count, decision.external,
                               decision.timed_out)
        alarms = self._post_consensus_alarms(tau, responses,
                                             decision.outcome,
                                             decision.external)
        self.timeout.observe(decision.detection_ms)
        result = ValidationResult(
            trigger_id=tau, ok=not alarms, external=decision.external,
            decided_at=self.sim.now, n_responses=decision.count,
            detection_ms=decision.detection_ms,
            timed_out=decision.timed_out, alarms=alarms)
        if (self.tracer is not None or self.metrics is not None
                or self.forensics is not None or self.health is not None
                or self.recorder is not None):
            self._observe_decision(tau, result, responses,
                                   decision.outcome, decision.external)
        self.stats.decided += 1
        if alarms:
            self.stats.alarmed += 1
        self.pipeline._emit(result, alarms)

    def _remote_arm(self, head: Optional[float], drained: bool) -> None:
        """Arm the shard wakeup from the worker's θτ heap head."""
        if head is None:
            if drained and self._wakeup is not None:
                self._wakeup.cancel()
                self._wakeup = None
                self._wakeup_at = float("inf")
            return
        if self._wakeup is not None:
            if self._wakeup_at <= head:
                return  # current wakeup fires first and will re-arm
            self._wakeup.cancel()
        self._wakeup = self.sim.schedule_at(head, self._on_remote_wakeup)
        self._wakeup_at = head

    def _on_remote_wakeup(self) -> None:
        self._wakeup = None
        self._wakeup_at = float("inf")
        # The wakeup frame may carry zero items; the worker still counts
        # the wakeup and fires deadlines up to the frame's timestamp.
        self.pipeline.backend.flush_shard(self, wakeup=True)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _decide(self, tau: Tuple, record: _ShardRecord,
                timed_out: bool) -> None:
        record.decided = True
        responses = record.responses
        external = self._classify_external(record.count, responses)
        if self.tracer is not None and self._sampled(tau):
            self._trace_decide(tau, record.count, external, timed_out)
        outcome = self._fast_consensus(responses, external)
        if outcome is None:
            self.stats.slowpath_decisions += 1
            outcome, alarms = self._run_checks(tau, responses, external)
        else:
            self.stats.fastpath_decisions += 1
            alarms = self._post_consensus_alarms(tau, responses, outcome,
                                                 external)

        received = [r.trigger_received_at for r in responses
                    if r.trigger_received_at is not None]
        baseline = min(received) if received else record.first_at
        detection_ms = max(0.0, self.sim.now - baseline)
        self.timeout.observe(detection_ms)

        result = ValidationResult(
            trigger_id=tau, ok=not alarms, external=external,
            decided_at=self.sim.now, n_responses=record.count,
            detection_ms=detection_ms, timed_out=timed_out, alarms=alarms)
        if (self.tracer is not None or self.metrics is not None
                or self.forensics is not None or self.health is not None
                or self.recorder is not None):
            self._observe_decision(tau, result, responses, outcome, external)
        self.stats.decided += 1
        if alarms:
            self.stats.alarmed += 1
        del self.records[tau]
        self._recently_decided[tau] = self.sim.now
        if len(self._recently_decided) > 20_000:
            horizon = self.sim.now - 20.0 * self.timeout.current()
            self._recently_decided = {
                t_id: decided
                for t_id, decided in self._recently_decided.items()
                if decided >= horizon}
        self.pipeline._emit(result, alarms)

    def _fast_consensus(self, responses: List[Response],
                        external: bool) -> Optional[ConsensusOutcome]:
        """Unanimity fast path: the clean outcome or ``None`` (fall back).

        The logic lives in
        :func:`repro.core.consensus.unanimity_fast_consensus` so backend
        worker ShardCores run literally the same code with their own
        network-entry memo; this wrapper binds the pipeline's.
        """
        return unanimity_fast_consensus(responses, external,
                                        self.state_aware,
                                        self.pipeline._merged_network)

    # ------------------------------------------------------------------
    # Checkpoint / restore (inline backends; frame backends harvest the
    # same payload shape from their worker's ShardCore instead)
    # ------------------------------------------------------------------
    def core_state(self) -> Dict[str, object]:
        """This shard's decision state, ShardCore-snapshot compatible.

        Same payload shape as :meth:`ShardCore.snapshot
        <repro.core.backends.shardcore.ShardCore.snapshot>` (unpickled), so
        a checkpoint taken on one backend restores on any other.
        ``itertools.count`` cannot be peeked, so reading the next heap
        tie-break seq burns one value and re-creates the counter there.
        """
        seq = next(self._deadline_seq)
        self._deadline_seq = itertools.count(seq)
        return {
            "records": {
                tau: (tuple(r.responses), r.count, r.first_at, r.deadline,
                      r.decided)
                for tau, r in self.records.items()},
            "recently_decided": dict(self._recently_decided),
            "deadlines": list(self._deadlines),
            "deadline_seq": seq,
        }

    def core_restore(self, payload: Dict[str, object]) -> None:
        """Rehydrate decision state from a :meth:`core_state` payload.

        Re-arms the coalesced θτ wakeup; a head deadline already in the
        past (backpressured batch at checkpoint time) is clamped to *now*
        so the wakeup fires immediately instead of tripping the
        simulator's no-past-scheduling guard.
        """
        self.records = {
            tau: _ShardRecord(responses=list(fields[0]), count=fields[1],
                              first_at=fields[2], deadline=fields[3],
                              decided=fields[4])
            for tau, fields in payload["records"].items()}
        self._recently_decided = dict(payload["recently_decided"])
        self._deadlines = list(payload["deadlines"])
        heapq.heapify(self._deadlines)
        self._deadline_seq = itertools.count(int(payload["deadline_seq"]))
        while self._deadlines and self._deadlines[0][2] not in self.records:
            heapq.heappop(self._deadlines)
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None
            self._wakeup_at = float("inf")
        if self._deadlines:
            head = max(self._deadlines[0][0], self.sim.now)
            self._wakeup = self.sim.schedule_at(head, self._on_wakeup)
            self._wakeup_at = head


class ValidationPipeline:
    """Drop-in sharded replacement for :class:`~repro.core.validator.Validator`.

    Exposes the validator's public surface (``ingest`` /
    ``handle_control_message``, counters, ``results`` / ``alarms``,
    ``detection_times`` / ``false_positive_rate``, ``on_alarm``) so
    :class:`~repro.core.deployment.JuryDeployment` and the harness can select
    ``pipeline=N`` without touching call sites.
    """

    def __init__(self, sim: Simulator, k: int, shards: int = 4,
                 timeout: Optional[TimeoutPolicy] = None,
                 policy_engine=None,
                 mastership_lookup: Optional[Callable[[int], Optional[str]]] = None,
                 keep_results: bool = True,
                 state_aware: bool = True,
                 taint_classification: bool = True,
                 queue_capacity: int = 1024,
                 batch_max: int = 512,
                 flush_interval_ms: float = 0.0,
                 tracer=None, metrics=None,
                 forensics=None, health=None, snapshot_sink=None,
                 sampler=None, recorder=None, profile=False,
                 backend="serial",
                 checkpoint_every: Optional[int] = None,
                 on_checkpoint: Optional[Callable] = None,
                 wal=None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1: {shards}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1: {queue_capacity}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1: {batch_max}")
        self.sim = sim
        self.k = k
        self.shards = shards
        self.timeout = timeout if timeout is not None else StaticTimeout(150.0)
        self.policy_engine = policy_engine
        self.mastership_lookup = mastership_lookup
        self.keep_results = keep_results
        self.state_aware = state_aware
        self.taint_classification = taint_classification
        self.queue_capacity = queue_capacity
        self.batch_max = batch_max
        self.flush_interval_ms = flush_interval_ms
        #: Observability (repro.obs); shards share both objects, and the
        #: trace they produce carries no shard indices — engine-specific
        #: detail (queues, batches, overflow) goes to the metrics registry
        #: so traces stay byte-identical at any shard count.
        self.tracer = active_tracer(tracer)
        self.metrics = metrics
        self.forensics = forensics
        self.health = health
        #: Periodic exporter (repro.obs.export.SnapshotSink) driven by the
        #: shard flush path; like the other observers it is pull-only.
        self.snapshot_sink = snapshot_sink
        #: Head sampler and flight recorder (repro.obs.sampling /
        #: .recorder): the sampler gates observer cost per trigger, the
        #: recorder is the always-on bounded ring — both shared by every
        #: shard, like the tracer.
        self.sampler = active_sampler(sampler)
        self.recorder = recorder
        #: Wall-clock worker profiling (repro.obs.profile): read by frame
        #: backends at worker start; the serial backend has no workers and
        #: ignores it.
        self.profile = bool(profile)
        #: Merged Ψid view shared by all shards (see module docstring).
        self.state: Dict[str, ControllerState] = {}
        self._shards = [_Shard(self, i) for i in range(shards)]
        # tau -> (shard, head-sampling decision): both are pure functions
        # of the trigger id, resolved once per trigger.
        self._route: Dict[Tuple, Tuple["_Shard", bool]] = {}
        self.results: List[ValidationResult] = []
        self._alarms: List[Alarm] = []
        self._alarms_sorted = True
        self.on_alarm: Optional[Callable[[Alarm], None]] = None
        self.responses_received = 0
        self.triggers_decided = 0
        self.triggers_alarmed = 0
        # Bounded memo caches: digests and network entries repeat heavily
        # across triggers (state advances slowly relative to trigger rate).
        self._progress_memo: Dict[Tuple, Optional[int]] = {}
        self._network_memo: Dict[Tuple, Tuple] = {}
        #: Crash recovery (repro.core.checkpoint): optional write-ahead log
        #: of ingests/decisions, plus an automatic snapshot every
        #: ``checkpoint_every`` decided triggers handed to ``on_checkpoint``.
        self.wal = wal
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self._since_checkpoint = 0
        self._checkpoint_scheduled = False
        #: Execution backend (repro.core.backends): owns how shard work
        #: units are scheduled. ``serial`` keeps the historical inline
        #: path; ``threads``/``processes`` exchange batch/verdict frames
        #: with long-lived workers. Attached last — a frame backend
        #: validates the timeout policy and spawns its workers here.
        self.backend = resolve_backend(backend)
        self.backend_name = self.backend.name
        self.backend.attach(self)

    def close(self) -> None:
        """Shut down backend workers. Results/alarms stay readable."""
        self.backend.close()

    def __enter__(self) -> "ValidationPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Ingest / routing
    # ------------------------------------------------------------------
    def handle_control_message(self, channel, response: Response) -> None:
        """Channel endpoint for controller modules (Validator-compatible)."""
        self.ingest(response)

    def ingest(self, response: Response) -> None:
        if self.wal is not None:
            # Logged before it can influence any decision: recovery replays
            # exactly the inputs this run saw, in arrival order.
            self.wal.append_ingest(self.sim.now, response)
        self.responses_received += 1
        tau = response.trigger_id
        # Route cache: ~2k+2 responses share each trigger id, so the
        # repr+CRC of shard_of — and the head-sampling decision, which
        # hashes the same key — amortise to one dict hit per response.
        entry = self._route.get(tau)
        if entry is None:
            sampler = self.sampler
            entry = (self._shards[shard_of(tau, self.shards)],
                     sampler is None or sampler.sampled(tau))
            if len(self._route) > 100_000:
                self._route.clear()
            self._route[tau] = entry
        shard, sampled = entry
        if sampled:
            if self.tracer is not None:
                self.tracer.emit(self.sim.now, tau, obs_trace.INGEST,
                                 kind=response.kind.value,
                                 controller=response.controller_id)
            if self.metrics is not None:
                self.metrics.counter("validator_responses_total",
                                     kind=response.kind.value).inc()
            if self.health is not None:
                # Engine-level hook (pre-queue) so response events match
                # the sequential validator's regardless of shard count.
                received = response.trigger_received_at
                self.health.record_response(
                    self.sim.now, response.controller_id,
                    lag_ms=None if received is None
                    else max(0.0, self.sim.now - received))
        shard.enqueue(self.sim.now, response)

    def drain(self) -> None:
        """Synchronously process every queued response (benchmark path)."""
        self.backend.drain()

    # ------------------------------------------------------------------
    # Emission (single ordered alarm stream)
    # ------------------------------------------------------------------
    def _emit(self, result: ValidationResult, alarms: List[Alarm]) -> None:
        self.triggers_decided += 1
        if alarms:
            self.triggers_alarmed += 1
            self._alarms.extend(alarms)
            self._alarms_sorted = False
            if self.on_alarm is not None:
                for alarm in alarms:
                    self.on_alarm(alarm)
        if self.keep_results:
            self.results.append(result)
        if self.wal is not None:
            self.wal.append_decision(self.sim.now, result.trigger_id,
                                     len(alarms))
        if self.checkpoint_every is not None:
            self._since_checkpoint += 1
            if (self._since_checkpoint >= self.checkpoint_every
                    and not self._checkpoint_scheduled):
                # Delay 0 lands after every event of the current simulated
                # instant — including the merge barrier on frame backends —
                # so the snapshot captures a consistent instant boundary.
                self._checkpoint_scheduled = True
                self.sim.schedule(0.0, self._auto_checkpoint)

    @property
    def alarms(self) -> List[Alarm]:
        """The merged alarm stream in deterministic order.

        Sorted by ``(raised_at, trigger id)`` — the pipeline's published
        merge contract. The sort is stable, so alarms of one trigger keep
        their check-battery emission order.
        """
        if not self._alarms_sorted:
            self._alarms.sort(key=alarm_merge_key)
            self._alarms_sorted = True
        return self._alarms

    def ordered_results(self) -> List[ValidationResult]:
        """Decided-trigger results in the deterministic merge order."""
        return sorted(self.results,
                      key=lambda r: (r.decided_at, repr(r.trigger_id)))

    # ------------------------------------------------------------------
    # Validator-compatible introspection
    # ------------------------------------------------------------------
    @property
    def late_responses(self) -> int:
        return sum(s.stats.late_responses for s in self._shards)

    @property
    def pending_count(self) -> int:
        """Undecided triggers plus responses still queued on any shard.

        On a frame backend the per-shard records live in the workers; the
        parent mirrors each worker's open-record count from its latest
        verdict (exact at instant boundaries, where the merge barrier has
        already drained every in-flight frame).
        """
        if self.backend.inline:
            open_records = sum(len(s.records) for s in self._shards)
        else:
            open_records = sum(s._remote_open for s in self._shards)
        return open_records + sum(
            len(s.queue) + len(s.overflow) for s in self._shards)

    def detection_times(self, external_only: bool = True) -> List[float]:
        return [r.detection_ms for r in self.results
                if (r.external or not external_only)]

    def false_positive_rate(self) -> float:
        if not self.triggers_decided:
            return 0.0
        return self.triggers_alarmed / self.triggers_decided

    @property
    def staleness_threshold(self) -> Optional[int]:
        return self._shards[0].staleness_threshold

    @staleness_threshold.setter
    def staleness_threshold(self, value: Optional[int]) -> None:
        for shard in self._shards:
            shard.staleness_threshold = value

    @property
    def staleness_cooldown_ms(self) -> float:
        return self._shards[0].staleness_cooldown_ms

    @staleness_cooldown_ms.setter
    def staleness_cooldown_ms(self, value: float) -> None:
        for shard in self._shards:
            shard.staleness_cooldown_ms = value

    # ------------------------------------------------------------------
    # Stats and checkpointing
    # ------------------------------------------------------------------
    @property
    def stats(self) -> PipelineStats:
        return PipelineStats(
            shards=self.shards,
            responses_routed=self.responses_received,
            per_shard=[s.stats.snapshot() for s in self._shards])

    def merged_view(self) -> Dict[str, ControllerState]:
        """Merge the per-shard Ψid views into one consistent snapshot.

        The merge is ``max`` over digest progress and ``sum`` over cache
        update counts — both order-independent, which is why the in-process
        pipeline can maintain the merged view incrementally. The result
        matches ``self.state`` by construction (asserted in the unit suite).
        """
        merged: Dict[str, ControllerState] = {}
        for shard in self._shards:
            for cid, progress in shard.local_progress.items():
                entry = merged.setdefault(cid, ControllerState())
                if progress > entry.digest_progress:
                    entry.digest_progress = progress
            for cid, count in shard.local_cache_updates.items():
                entry = merged.setdefault(cid, ControllerState())
                entry.cache_updates += count
        for cid, entry in merged.items():
            shared = self.state.get(cid)
            if shared is not None:
                entry.last_entry = shared.last_entry
                entry.last_stale_alarm_at = shared.last_stale_alarm_at
        return merged

    # ------------------------------------------------------------------
    # Checkpoint / restore (repro.core.checkpoint, docs/recovery.md)
    # ------------------------------------------------------------------
    def _auto_checkpoint(self) -> None:
        self._checkpoint_scheduled = False
        self._since_checkpoint = 0
        checkpoint = self.checkpoint()
        if self.on_checkpoint is not None:
            self.on_checkpoint(checkpoint)

    def checkpoint(self) -> "Checkpoint":
        """Snapshot the full pipeline into a restorable envelope.

        Captures the merged Ψ view, every shard's decision state (via the
        backend, so frame backends harvest their worker's ShardCore — the
        backend merges any in-flight verdicts first), arrival queues and
        overflow rings, per-shard stats, the per-shard Ψid local views,
        the merged alarm stream, results, engine counters, and the global
        trigger-id counters. Appends a marker to the WAL (when attached)
        so :func:`repro.core.checkpoint.wal_tail` can split the log.
        """
        state = {
            "psi": snapshot_controller_states(self.state),
            "shards": [
                {"core": self.backend.shard_state(shard),
                 "queue": list(shard.queue),
                 "overflow": list(shard.overflow),
                 "stats": shard.stats.snapshot(),
                 "local_progress": dict(shard.local_progress),
                 "local_cache_updates": dict(shard.local_cache_updates)}
                for shard in self._shards],
            # The sorted property: idempotent, deterministic order.
            "alarms": list(self.alarms),
            "results": list(self.results),
            "counters": (self.responses_received, self.triggers_decided,
                         self.triggers_alarmed),
            "trigger_ids": snapshot_trigger_ids(),
            "staleness": (self.staleness_threshold,
                          self.staleness_cooldown_ms),
        }
        meta = {
            "engine": "pipeline",
            "k": self.k,
            "shards": self.shards,
            "backend": self.backend_name,
            "timeout_ms": self.timeout.current(),
            "sim_now": self.sim.now,
            "queue_capacity": self.queue_capacity,
            "batch_max": self.batch_max,
            "flush_interval_ms": self.flush_interval_ms,
            "keep_results": self.keep_results,
            "state_aware": self.state_aware,
            "taint_classification": self.taint_classification,
            "triggers_decided": self.triggers_decided,
        }
        checkpoint = Checkpoint.build(meta, state)
        if self.wal is not None:
            self.wal.append_checkpoint(checkpoint.sha256)
        observe_checkpoint(self, checkpoint)
        return checkpoint

    def restore(self, checkpoint: "Checkpoint") -> None:
        """Rehydrate this (fresh) pipeline from a :meth:`checkpoint`.

        The pipeline must have the same shape (``k``, shard count) as the
        one that produced the snapshot and must not have advanced past the
        snapshot's simulated time; the backend may differ (a serial
        checkpoint restores onto a processes backend and vice versa — the
        shard payload is the portable ShardCore shape). On frame backends
        the payload is pushed down to the replacement workers, which also
        resets the crash-recovery piggyback basis: a worker killed after
        this point rehydrates from this snapshot instead of frame 0.
        """
        meta = checkpoint.meta
        if meta.get("engine") != "pipeline":
            raise CheckpointError(
                f"checkpoint was taken by engine "
                f"{meta.get('engine')!r}, not a pipeline")
        if meta.get("k") != self.k or meta.get("shards") != self.shards:
            raise CheckpointError(
                f"checkpoint shape (k={meta.get('k')}, "
                f"shards={meta.get('shards')}) does not match this "
                f"pipeline (k={self.k}, shards={self.shards})")
        if self.triggers_decided or self.responses_received:
            raise CheckpointError(
                "restore target must be a fresh pipeline (this one has "
                f"already ingested {self.responses_received} responses)")
        state = checkpoint.state()
        sim_now = meta["sim_now"]
        if self.sim.now > sim_now:
            raise CheckpointError(
                f"simulator is at t={self.sim.now} ms, past the "
                f"checkpoint's t={sim_now} ms")
        self.sim.run(until=sim_now)
        # Shards hold a reference to this exact dict (shared merged view):
        # mutate in place, never rebind.
        self.state.clear()
        self.state.update(restore_controller_states(state["psi"]))
        for shard, payload in zip(self._shards, state["shards"]):
            self.backend.restore_shard(shard, payload["core"])
            shard.queue = deque(payload["queue"])
            shard.overflow = deque(payload["overflow"])
            for key, value in payload["stats"].items():
                setattr(shard.stats, key, value)
            shard.local_progress = dict(payload["local_progress"])
            shard.local_cache_updates = dict(payload["local_cache_updates"])
            if ((shard.queue or shard.overflow)
                    and not shard._flush_scheduled):
                shard._flush_scheduled = True
                self.sim.schedule(self.flush_interval_ms, shard._flush)
        self._alarms = list(state["alarms"])
        self._alarms_sorted = True
        self.results = list(state["results"])
        (self.responses_received, self.triggers_decided,
         self.triggers_alarmed) = state["counters"]
        restore_trigger_ids(state["trigger_ids"])
        threshold, cooldown = state["staleness"]
        self.staleness_threshold = threshold
        self.staleness_cooldown_ms = cooldown
        observe_restore(self, checkpoint)

    # ------------------------------------------------------------------
    # Memoised helpers for the shard fast path
    # ------------------------------------------------------------------
    def _progress_of(self, digest: Tuple) -> Optional[int]:
        if not digest:
            return None
        cached = self._progress_memo.get(digest)
        if cached is None and digest not in self._progress_memo:
            cached = digest_progress(digest)
            if len(self._progress_memo) > 4096:
                self._progress_memo.clear()
            self._progress_memo[digest] = cached
        return cached

    def _merged_network(self, network: List[Response]) -> Tuple:
        if not network:
            return ()
        if len(network) == 1:
            entry = network[0].entry
            cached = self._network_memo.get(entry)
            if cached is None:
                cached = _merge_network(network)
                if len(self._network_memo) > 2048:
                    self._network_memo.clear()
                self._network_memo[entry] = cached
            return cached
        return _merge_network(network)
