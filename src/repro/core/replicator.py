"""JURY's trigger replicator.

One replicator sits at each switch's OVS proxy, *outside the controller
binary* (§IV-A) — a faulty controller cannot corrupt the replicated trigger.
For every external southbound trigger (PACKET_IN, FEATURES_REPLY) it

1. assigns the trigger id τ and stamps it on the message so the primary's
   JURY module attributes the primary's responses to the same trigger;
2. selects ``k`` pseudo-random secondaries (deterministically from τ, so
   every module can recompute the designated set without coordination); and
3. ships a taint-wrapped copy to each over the proxy's reliable in-order
   channels, encapsulating PACKET_INs for ODL-style secondaries (§VI-A).

Northbound REST triggers are intercepted by
:meth:`Replicator.intercept_rest`, which the deployment splices into the
:class:`~repro.controllers.northbound.NorthboundApi` delivery path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.controllers.context import Taint, new_external_trigger_id
from repro.core.selection import designated_secondaries
from repro.obs import trace as obs_trace
from repro.net.ovs import ReplicatingProxy
from repro.openflow.encap import encapsulate_packet_in
from repro.openflow.messages import FeaturesReply, PacketIn, RestRequest


@dataclass
class ReplicatedTrigger:
    """Taint-wrapped copy of an external trigger, bound for a secondary."""

    taint: Taint
    message: Any
    encapsulated: bool
    intercepted_at: float

    #: Duck-typing marker so controllers can route without importing core.
    is_replicated_trigger = True

    def wire_size(self) -> int:
        inner = self.message.wire_size() if hasattr(self.message, "wire_size") else 64
        return inner + 8  # replication framing


class Replicator:
    """Per-switch trigger interception and replication."""

    def __init__(self, deployment, proxy: ReplicatingProxy):
        self.deployment = deployment
        self.proxy = proxy
        self.sim = deployment.sim
        proxy.on_switch_to_controller = self._on_switch_trigger
        self.triggers_replicated = 0
        self._connects_seen: set = set()
        # Observers are shared deployment-wide; None means off (fast path).
        self.tracer = deployment.tracer
        self.metrics = deployment.metrics
        # Head sampler (repro.obs.sampling) shared with the validator: the
        # same pure per-τ decision gates intercept/replicate telemetry so a
        # sampled trigger appears in the trace end to end or not at all.
        self.sampler = getattr(deployment, "sampler", None)

    def _sampled(self, tau) -> bool:
        sampler = self.sampler
        return sampler is None or sampler.sampled(tau)

    # ------------------------------------------------------------------
    def _on_switch_trigger(self, message: Any) -> None:
        if not isinstance(message, (PacketIn, FeaturesReply)):
            return
        if isinstance(message, FeaturesReply):
            if not self.deployment.replicate_handshakes:
                return
            if message.dpid in self._connects_seen:
                return  # one connect event per switch session; the rest are
                        # duplicate replies to per-controller FEATURES_REQUESTs
            self._connects_seen.add(message.dpid)
        primary = self.proxy.primary_id
        tau = new_external_trigger_id()
        # Stamp τ so the primary's own context uses the same trigger id.
        message.jury_tau = tau
        if self.tracer is not None and self._sampled(tau):
            self.tracer.emit(self.sim.now, tau, obs_trace.INTERCEPT,
                             source="switch", primary=primary,
                             kind=type(message).__name__)
        if self.metrics is not None and self._sampled(tau):
            self.metrics.counter("replicator_triggers_total",
                                 source="switch").inc()
        self._replicate(tau, primary, message,
                        via_proxy=True, intercepted_at=self.sim.now)

    def intercept_rest(self, controller_id: str, request: RestRequest) -> None:
        """Northbound interception: stamp τ and replicate the request."""
        tau = new_external_trigger_id()
        request.jury_tau = tau
        if self.tracer is not None and self._sampled(tau):
            self.tracer.emit(self.sim.now, tau, obs_trace.INTERCEPT,
                             source="rest", primary=controller_id,
                             kind=type(request).__name__)
        if self.metrics is not None and self._sampled(tau):
            self.metrics.counter("replicator_triggers_total",
                                 source="rest").inc()
        self._replicate(tau, controller_id, request,
                        via_proxy=False, intercepted_at=self.sim.now)

    # ------------------------------------------------------------------
    def _replicate(self, tau, primary: str, message: Any, via_proxy: bool,
                   intercepted_at: float) -> None:
        deployment = self.deployment
        secondaries = designated_secondaries(
            tau, deployment.controller_ids, deployment.k, exclude=(primary,))
        taint = Taint(trigger_id=tau, primary_id=primary)
        if self.tracer is not None and self._sampled(tau):
            self.tracer.emit(self.sim.now, tau, obs_trace.REPLICATE,
                             secondaries=len(secondaries))
        for secondary_id in secondaries:
            controller = deployment.cluster.controllers.get(secondary_id)
            if controller is None:
                continue
            payload = message
            encapsulated = False
            if (controller.profile.replication_encapsulated
                    and isinstance(message, PacketIn)):
                payload = encapsulate_packet_in(
                    message, ovs_dpid=self.proxy.switch.dpid, ovs_port=0)
                encapsulated = True
            trigger = ReplicatedTrigger(
                taint=taint, message=payload, encapsulated=encapsulated,
                intercepted_at=intercepted_at)
            deployment.replication_counter.add(trigger.wire_size())
            self.triggers_replicated += 1
            if self.metrics is not None:
                self.metrics.counter("replicator_copies_total").inc()
            if via_proxy and self.proxy.send_to_controller(secondary_id, trigger):
                continue
            # REST triggers (or missing proxy channels) go point-to-point.
            delay = controller.profile.control_latency.sample(
                deployment.rng)
            self.sim.schedule(delay, self._deliver_direct, controller, trigger)

    @staticmethod
    def _deliver_direct(controller, trigger: ReplicatedTrigger) -> None:
        module = controller.jury_module
        if module is not None and controller.alive:
            module.on_replicated_trigger(trigger)
