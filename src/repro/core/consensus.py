"""Consensus evaluation and the network/cache sanity check.

``evaluate_consensus`` implements the CONSENSUS step of Algorithm 1 with the
three refinements of §IV-C:

* **Transient state asynchrony** — the primary's action is validated only
  against secondary replicas whose state digest matches the primary's, so
  an eventually-consistent cluster's laggards cannot cause false positives.
* **Non-determinism** — if every replica produced a distinct response, the
  action is labelled non-deterministic and non-faulty; otherwise majority
  among equivalent-state replicas applies.
* **Slow replicas / omissions** — an absent primary response against
  non-empty replica responses is a response-omission (timing) fault.

``sanity_check`` asserts that the primary's *network* writes are consistent
with the *cache* updates (the T2 detector): every FLOW_MOD must be justified
by a flow-cache write and vice versa; PACKET_OUTs are exempt (they have no
cache footprint by design).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.alarms import AlarmReason
from repro.core.responses import Response, ResponseKind
from repro.datastore.caches import FLOWSDB
from repro.openflow.constants import FlowState


@dataclass
class ConsensusOutcome:
    """Result of the consensus step for one trigger."""

    ok: bool
    reason: Optional[AlarmReason] = None
    offending: Optional[str] = None
    detail: str = ""
    primary_id: Optional[str] = None
    primary_cache_entry: Tuple = ()
    primary_network_entry: Tuple = ()
    non_deterministic: bool = False
    compared_replicas: int = 0


def evaluate_consensus(responses: Sequence[Response], k: int,
                       external: bool,
                       state_aware: bool = True) -> ConsensusOutcome:
    """Run the consensus mechanism over one trigger's responses.

    ``state_aware=False`` disables the snapshot grouping of §IV-C (used by
    the ablation benchmark): the primary is compared against *all* replicas
    regardless of their view, which re-introduces false positives under
    eventual consistency.
    """
    replicas = [r for r in responses if r.kind == ResponseKind.REPLICA_RESULT]
    cache_relays = [r for r in responses if r.kind == ResponseKind.CACHE_UPDATE]
    network = [r for r in responses if r.kind == ResponseKind.NETWORK_WRITE]

    primary_id = _primary_id(replicas, cache_relays, network)
    cache_entry, cache_deviant = _cache_majority(cache_relays)
    # The full network entry (all emitters, incl. remote masters emitting
    # FLOW_MODs for cache writes they observed) feeds the sanity check; the
    # consensus comparison uses only the primary's OWN emissions, because
    # shadow replicas can only reproduce what the primary itself would send.
    network_entry = _merge_network(network)
    own_network_entry = _merge_network(
        [r for r in network if r.controller_id == primary_id])
    primary_digest = _primary_digest(primary_id, cache_relays, network)

    if cache_deviant is not None:
        return ConsensusOutcome(
            ok=False, reason=AlarmReason.CONSENSUS_MISMATCH,
            offending=cache_deviant, primary_id=primary_id,
            primary_cache_entry=cache_entry, primary_network_entry=network_entry,
            detail="cache relay deviates from majority (incorrect replicated state)")

    if not external:
        # Internal triggers: the relayed copies of the origin's cache events
        # must agree (checked above); network/cache coherence and policies
        # are checked by the caller.
        return ConsensusOutcome(
            ok=True, primary_id=primary_id,
            primary_cache_entry=cache_entry, primary_network_entry=network_entry)

    primary_combined = (cache_entry, own_network_entry)
    has_primary = bool(cache_relays or network)

    if not has_primary:
        # No untainted response from the primary at all. If the replicas'
        # shadow executions externalized anything, the primary omitted its
        # response — the database-locking detection path (§VII-A1).
        non_empty = [r for r in replicas if r.entry != ((), ())]
        # Majority of the *expected* k replicas must have externalized:
        # during state churn a lone lagging replica shadow-produces writes
        # the up-to-date primary correctly skipped.
        if replicas and len(non_empty) * 2 > max(len(replicas), k):
            return ConsensusOutcome(
                ok=False, reason=AlarmReason.PRIMARY_OMISSION,
                offending=primary_id, primary_id=primary_id,
                detail=f"{len(non_empty)}/{len(replicas)} replicas externalized "
                       "responses but the primary did not")
        return ConsensusOutcome(ok=True, primary_id=primary_id)

    if not replicas:
        # Nothing to compare against (e.g. k=0); fall through to sanity/policy.
        return ConsensusOutcome(
            ok=True, primary_id=primary_id,
            primary_cache_entry=cache_entry, primary_network_entry=network_entry)

    if any(r.declared_non_deterministic for r in replicas):
        # §VIII extension: the application identified itself as
        # non-deterministic, so majority comparison is skipped outright.
        return ConsensusOutcome(
            ok=True, non_deterministic=True, primary_id=primary_id,
            primary_cache_entry=cache_entry, primary_network_entry=network_entry)

    entries = [r.entry for r in replicas]
    if len(entries) >= 2 and len(set(entries)) == len(entries):
        # Every replica distinct: non-deterministic application logic.
        return ConsensusOutcome(
            ok=True, non_deterministic=True, primary_id=primary_id,
            primary_cache_entry=cache_entry, primary_network_entry=network_entry)

    comparable = [r for r in replicas
                  if not state_aware
                  or primary_digest is None
                  or r.state_digest == primary_digest]
    if not comparable:
        # No replica shared the primary's view — inconclusive, avert the FP.
        return ConsensusOutcome(
            ok=True, primary_id=primary_id, compared_replicas=0,
            primary_cache_entry=cache_entry, primary_network_entry=network_entry,
            detail="no equivalent-state replicas; inconclusive")

    majority_entry, majority_count = Counter(
        r.entry for r in comparable).most_common(1)[0]
    if majority_count * 2 <= len(comparable):
        return ConsensusOutcome(
            ok=True, primary_id=primary_id, compared_replicas=len(comparable),
            primary_cache_entry=cache_entry, primary_network_entry=network_entry,
            detail="no majority among equivalent-state replicas; inconclusive")

    if primary_combined != majority_entry:
        return ConsensusOutcome(
            ok=False, reason=AlarmReason.CONSENSUS_MISMATCH,
            offending=primary_id, primary_id=primary_id,
            compared_replicas=len(comparable),
            primary_cache_entry=cache_entry, primary_network_entry=network_entry,
            detail=f"primary response deviates from {majority_count}/"
                   f"{len(comparable)} equivalent-state replicas")

    return ConsensusOutcome(
        ok=True, primary_id=primary_id, compared_replicas=len(comparable),
        primary_cache_entry=cache_entry, primary_network_entry=network_entry)


# ----------------------------------------------------------------------
# Sanity check: network writes vs cache updates (T2 detector)
# ----------------------------------------------------------------------

def sanity_check(cache_entry: Tuple, network_entry: Tuple,
                 primary_id: Optional[str]) -> ConsensusOutcome:
    """Assert the primary's network writes match the cache updates.

    Returns an ok outcome or a SANITY_MISMATCH naming the offender.
    """
    expected_flow_mods = _flow_mods_implied_by_cache(cache_entry)
    actual_flow_mods = {c for c in network_entry if c and c[0] == "flow_mod"}

    missing = expected_flow_mods - actual_flow_mods
    if missing:
        return ConsensusOutcome(
            ok=False, reason=AlarmReason.SANITY_MISMATCH, offending=primary_id,
            primary_id=primary_id,
            detail=f"cache promises {len(missing)} FLOW_MOD(s) absent from "
                   f"the network: {sorted(missing, key=repr)[:2]}")
    unjustified = actual_flow_mods - expected_flow_mods
    if unjustified:
        return ConsensusOutcome(
            ok=False, reason=AlarmReason.SANITY_MISMATCH, offending=primary_id,
            primary_id=primary_id,
            detail=f"{len(unjustified)} FLOW_MOD(s) on the network with no "
                   f"matching cache update: {sorted(unjustified, key=repr)[:2]}")
    return ConsensusOutcome(ok=True, primary_id=primary_id)


def _flow_mods_implied_by_cache(cache_entry: Tuple) -> set:
    """The FLOW_MOD canonicals a set of cache writes promises."""
    implied = set()
    for canonical in cache_entry:
        if not canonical or canonical[0] != "cache" or canonical[1] != FLOWSDB:
            continue
        _, _, key, op, value = canonical
        if not (isinstance(key, tuple) and len(key) == 4 and key[0] == "flow"):
            continue
        _, dpid, match_canonical, priority = key
        if op == "delete":
            implied.add(("flow_mod", dpid, "delete", match_canonical, (),
                         priority))
            continue
        fields = dict(value) if isinstance(value, tuple) else {}
        if fields.get("state") != FlowState.PENDING_ADD.value:
            continue  # reconciliation updates promise nothing new
        if "attempts" in fields:
            continue  # stranded-rule refresh, FLOW_MOD already (re)sent
        implied.add((
            "flow_mod", dpid, fields.get("command", "add"),
            fields.get("match", match_canonical), fields.get("actions", ()),
            fields.get("priority", priority),
        ))
    return implied


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _primary_id(replicas: List[Response], cache_relays: List[Response],
                network: List[Response]) -> Optional[str]:
    # The primary is the controller that received the trigger: the origin
    # of the cache write if one exists (a remote master may also emit
    # network writes for the same trigger, so network sender is a fallback).
    for response in cache_relays:
        origin = getattr(response, "origin", None)
        if origin:
            return origin
    for response in replicas:
        hint = getattr(response, "primary_hint", None)
        if hint:
            return hint
    for response in network:
        return response.controller_id
    return None


def _primary_digest(primary_id: Optional[str], cache_relays: List[Response],
                    network: List[Response]) -> Optional[Tuple]:
    """The primary's state digest, taken from its own relayed responses."""
    for response in cache_relays + network:
        if response.controller_id == primary_id and response.state_digest:
            return response.state_digest
    return None


def _cache_majority(cache_relays: List[Response]) -> Tuple[Tuple, Optional[str]]:
    """Majority cache entry among relays, plus a deviating relayer if any.

    Relays are copies of the same origin events; a deviation means a replica
    applied (and re-reported) corrupted state.
    """
    if not cache_relays:
        return (), None
    counts = Counter(r.entry for r in cache_relays)
    majority_entry, majority_count = counts.most_common(1)[0]
    if majority_count == len(cache_relays):
        return majority_entry, None
    if majority_count * 2 <= len(cache_relays):
        # No clear majority — blame the origin's own relay if it deviates,
        # otherwise the first deviant.
        majority_entry = counts.most_common(1)[0][0]
    for response in cache_relays:
        if response.entry != majority_entry:
            return majority_entry, response.controller_id
    return majority_entry, None


def _merge_network(network: List[Response]) -> Tuple:
    """Merge network-write bundles (origin + remote masters) for a trigger."""
    merged: List[Tuple] = []
    for response in network:
        merged.extend(response.entry)
    return tuple(sorted(set(merged), key=repr))


def unanimity_fast_consensus(responses: Sequence[Response], external: bool,
                             state_aware: bool,
                             merged_network) -> Optional[ConsensusOutcome]:
    """Unanimity fast path: the clean outcome or ``None`` (fall back).

    Returns an outcome only when it provably equals what
    :func:`evaluate_consensus` would produce — unanimous cache relays, a
    known primary, every replica sharing the primary's digest and entry,
    and the primary's combined response matching that entry. Anything
    murkier (omissions, deviations, non-determinism, partial state
    equivalence) must take the sequential slow path so the engines cannot
    diverge. ``merged_network`` is a (possibly memoised) callable with the
    contract of :func:`_merge_network`; pipeline shards and backend workers
    pass their own caches, which is why this lives here as a pure function.
    """
    replicas: List[Response] = []
    cache_relays: List[Response] = []
    network: List[Response] = []
    for r in responses:
        if r.kind == ResponseKind.REPLICA_RESULT:
            replicas.append(r)
        elif r.kind == ResponseKind.CACHE_UPDATE:
            cache_relays.append(r)
        else:
            network.append(r)

    cache_entry: Tuple = cache_relays[0].entry if cache_relays else ()
    primary_id: Optional[str] = None
    for r in cache_relays:
        if r.entry != cache_entry:
            return None  # deviant relay — slow path assigns blame
        if primary_id is None and r.origin:
            primary_id = r.origin
    if primary_id is None:
        for r in replicas:
            if r.primary_hint:
                primary_id = r.primary_hint
                break
    if primary_id is None and network:
        primary_id = network[0].controller_id

    network_entry = merged_network(network)

    if not external:
        return ConsensusOutcome(
            ok=True, primary_id=primary_id,
            primary_cache_entry=cache_entry,
            primary_network_entry=network_entry)

    if not (cache_relays or network):
        return None  # possible primary omission — slow path
    if not replicas:
        return ConsensusOutcome(
            ok=True, primary_id=primary_id,
            primary_cache_entry=cache_entry,
            primary_network_entry=network_entry)

    replica_entry = replicas[0].entry
    for r in replicas:
        if r.declared_non_deterministic or r.entry != replica_entry:
            return None

    primary_digest: Optional[Tuple] = None
    for r in cache_relays:
        if r.controller_id == primary_id and r.state_digest:
            primary_digest = r.state_digest
            break
    if primary_digest is None:
        for r in network:
            if r.controller_id == primary_id and r.state_digest:
                primary_digest = r.state_digest
                break
    if state_aware and primary_digest is not None:
        for r in replicas:
            if r.state_digest != primary_digest:
                return None  # partial equivalence — slow path

    own_network_entry = merged_network(
        [r for r in network if r.controller_id == primary_id])
    if (cache_entry, own_network_entry) != replica_entry:
        return None
    return ConsensusOutcome(
        ok=True, primary_id=primary_id,
        compared_replicas=len(replicas),
        primary_cache_entry=cache_entry,
        primary_network_entry=network_entry)
