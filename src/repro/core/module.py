"""JURY's in-controller module — one per replica.

Responsibilities (§IV, §VI):

* **Replicated-trigger injection** — unwrap (and for ODL, decapsulate) the
  taint-wrapped trigger from the replicator and run it through the local
  pipeline as a *shadow* execution whose side-effects are captured and
  dropped. Shadow processing impersonates the primary, so the control
  sequence matches the original exactly.
* **Response relay** — stream three kinds of responses to the out-of-band
  validator: captured shadow results (tainted), cache events for triggers
  this node is designated to report, and the node's actual outgoing network
  messages. Responses carry the replica's state digest for state-aware
  consensus, and their relay latency includes the long-tailed JVM jitter
  that dominates the paper's detection-time distributions.
* **Aggregation** — multiple cache writes / network messages for one trigger
  are debounced into a single response so the validator's ``2k+2`` response
  accounting holds (Algorithm 1).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

from repro.controllers.base import Controller, NetworkMessageRecord
from repro.controllers.context import TriggerContext
from repro.core.responses import Response, ResponseKind, sort_canonicals
from repro.core.selection import designated_secondaries
from repro.datastore.events import CacheEvent
from repro.net.packet import LldpPayload
from repro.openflow.encap import EncapStats, decapsulate_packet_in
from repro.openflow.messages import (
    FeaturesReply,
    FlowMod,
    PacketIn,
    PacketOut,
    RestRequest,
)


class JuryModule:
    """The per-replica controller module."""

    #: Debounce window (ms) for aggregating a trigger's cache/network writes.
    FLUSH_DEBOUNCE_MS = 1.5
    #: Maximum time to hold a network bundle open for a promised FLOW_MOD
    #: still in the egress queue. An egress *drop* (the ODL fault) leaves
    #: the promise unfulfilled and the bundle flushes without it.
    PROMISE_HOLD_MAX_MS = 300.0
    #: Hazelcast mastership request/notify bytes per shadow trigger (§VII-B.2).
    MASTERSHIP_BYTES_PER_SHADOW = 90
    #: Mastership-update processing stolen from the primary's pipeline per
    #: shadow trigger (the <11% FLOW_MOD throughput cost at k=6, Fig 4h).
    MASTERSHIP_PRIMARY_COST_MS = 0.0025

    def __init__(self, deployment, controller: Controller):
        self.deployment = deployment
        self.controller = controller
        self.sim = controller.sim
        self.encap_stats = EncapStats()
        self._rng = self.sim.fork_rng(f"jury-module/{controller.id}")
        self._cache_buffers: Dict[Tuple, Dict[str, Any]] = {}
        self._network_buffers: Dict[Tuple, Dict[str, Any]] = {}
        self.responses_sent = 0
        self.shadow_triggers = 0
        # Hook into the controller.
        controller.jury_module = self
        controller.network_tap = self._on_network_message
        controller.trigger_done_hook = self._on_trigger_done
        controller.network_promise_hook = self._on_network_promised
        controller.store.add_listener(self._on_cache_event)
        self._promised: Dict[Tuple, int] = {}
        self.validator_channel = None  # wired by the deployment

    # ------------------------------------------------------------------
    # Replicated triggers (secondary role)
    # ------------------------------------------------------------------
    def on_replicated_trigger(self, trigger) -> None:
        """Inject a replicated trigger as a shadow execution."""
        controller = self.controller
        if not controller.alive:
            return
        self.shadow_triggers += 1
        self._mastership_chatter(trigger.taint.primary_id)
        message = trigger.message
        decap_cost = 0.0
        if trigger.encapsulated:
            message, decap_cost = decapsulate_packet_in(message, self._rng)
            self.encap_stats.record(decap_cost)
        ctx = TriggerContext.replica_of(
            trigger.taint, received_at=trigger.intercepted_at,
            description="replicated")
        if decap_cost > 0:
            self.sim.schedule(decap_cost, self._inject, message, ctx)
        else:
            self._inject(message, ctx)

    def _inject(self, message: Any, ctx: TriggerContext) -> None:
        controller = self.controller
        if isinstance(message, PacketIn):
            controller.ingress_packet_in(message, ctx=ctx)
        elif isinstance(message, FeaturesReply):
            controller.shadow_switch_connect(message, ctx)
        elif isinstance(message, RestRequest):
            controller.ingress_rest(message, ctx=ctx)

    def _mastership_chatter(self, primary_id: str) -> None:
        """Secondary -> primary mastership traffic and primary-side cost.

        Shadow processing makes secondaries request/notify switch mastership
        status from the primary over the store (the ~4 Mbps/secondary of
        Hazelcast chatter in §VII-B.2); applying those updates steals a
        little of the primary's pipeline (the <11% throughput cost, Fig 4h).
        """
        store_counter = self.controller.store.cluster.counter
        store_counter.add(self.MASTERSHIP_BYTES_PER_SHADOW)
        primary = self.deployment.cluster.controllers.get(primary_id)
        if primary is not None and primary is not self.controller and primary.alive:
            primary.pipeline.hold(self.MASTERSHIP_PRIMARY_COST_MS)

    # ------------------------------------------------------------------
    # Shadow completion -> replica result
    # ------------------------------------------------------------------
    def _on_trigger_done(self, ctx: TriggerContext) -> None:
        if not ctx.shadow or ctx.taint is None:
            return
        self._send(Response(
            controller_id=self.controller.id,
            trigger_id=ctx.trigger_id,
            kind=ResponseKind.REPLICA_RESULT,
            entry=ctx.combined_canonical(),
            tainted=True,
            state_digest=ctx.entry_digest,
            trigger_received_at=ctx.received_at,
            primary_hint=ctx.taint.primary_id,
            declared_non_deterministic=ctx.non_deterministic,
        ))

    # ------------------------------------------------------------------
    # Cache-event relay (3c)
    # ------------------------------------------------------------------
    def _on_cache_event(self, node, event: CacheEvent) -> None:
        if not self.controller.alive:
            return
        tau = event.trigger_id
        if not self._designated_for(tau, event.origin):
            return
        buffer = self._cache_buffers.get(tau)
        if buffer is None:
            # The digest must reflect the state the action was computed in:
            # the writer stamps its processing-start digest on the event;
            # other relayers report that same context digest so the
            # validator's _primary_digest sees the pre-write view.
            digest = event.ctx_digest or self.controller.state_digest()
            buffer = {"events": [], "origin": event.origin, "digest": digest,
                      "last_at": self.sim.now}
            self._cache_buffers[tau] = buffer
            self.sim.schedule(self._cache_debounce_ms(), self._flush_cache, tau)
        buffer["events"].append(event.canonical())
        buffer["last_at"] = self.sim.now

    def _cache_debounce_ms(self) -> float:
        """Quiet period before a trigger's cache bundle is sealed.

        Strongly consistent stores serialize a multi-write trigger's writes
        milliseconds apart (global lock + synchronous replication), so their
        bundles need a longer quiet window than Hazelcast's.
        """
        if self.controller.profile.store == "infinispan":
            return 8.0 * max(1, len(self.deployment.controller_ids))
        return self.FLUSH_DEBOUNCE_MS

    def _designated_for(self, tau: Tuple, origin: str) -> bool:
        """Am I the origin or one of the k designated relays for τ?

        The designated set is the deterministic pseudo-random selection the
        replicator used (external triggers) or the equivalent selection
        seeded by the action id (internal triggers) — no coordination needed.
        """
        me = self.controller.id
        if me == origin:
            return True
        chosen = designated_secondaries(
            tau, self.deployment.controller_ids, self.deployment.k,
            exclude=(origin,))
        return me in chosen

    def _flush_cache(self, tau: Tuple) -> None:
        buffer = self._cache_buffers.get(tau)
        if buffer is None or not self.controller.alive:
            self._cache_buffers.pop(tau, None)
            return
        debounce = self._cache_debounce_ms()
        quiet_for = self.sim.now - buffer["last_at"]
        if quiet_for + 1e-6 < debounce:
            # Writes are still arriving for this trigger (a multi-write
            # proactive action on a slow store); keep the bundle open. The
            # minimum step guards against a zero-progress reschedule loop
            # under floating-point rounding.
            self.sim.schedule(max(0.1, debounce - quiet_for),
                              self._flush_cache, tau)
            return
        self._cache_buffers.pop(tau, None)
        self._send(Response(
            controller_id=self.controller.id,
            trigger_id=tau,
            kind=ResponseKind.CACHE_UPDATE,
            entry=sort_canonicals(buffer["events"]),
            tainted=False,
            state_digest=buffer["digest"],
            origin=buffer["origin"],
        ))

    # ------------------------------------------------------------------
    # Outgoing-network interception (4c)
    # ------------------------------------------------------------------
    def _on_network_promised(self, tau: Tuple) -> None:
        """A FLOW_MOD for τ entered the egress path; hold its bundle open."""
        self._promised[tau] = self._promised.get(tau, 0) + 1

    def _on_network_message(self, record: NetworkMessageRecord) -> None:
        message = record.message
        if _is_lldp_probe(message):
            return  # topology probes have no cache footprint by design
        tau = record.tau
        if isinstance(message, FlowMod):
            pending = self._promised.get(tau, 0)
            if pending > 1:
                self._promised[tau] = pending - 1
            else:
                self._promised.pop(tau, None)
        buffer = self._network_buffers.get(tau)
        if buffer is None:
            buffer = {"messages": [], "opened_at": self.sim.now,
                      "digest": record.ctx_digest or self.controller.state_digest()}
            self._network_buffers[tau] = buffer
            self.sim.schedule(self.FLUSH_DEBOUNCE_MS, self._flush_network, tau)
        buffer["messages"].append(message.canonical())

    def _flush_network(self, tau: Tuple) -> None:
        buffer = self._network_buffers.get(tau)
        if buffer is None:
            return
        held = self.sim.now - buffer["opened_at"]
        if self._promised.get(tau, 0) > 0 and held < self.PROMISE_HOLD_MAX_MS:
            # A FLOW_MOD for this trigger is still in the egress queue;
            # keep the bundle open a little longer.
            self.sim.schedule(self.FLUSH_DEBOUNCE_MS, self._flush_network, tau)
            return
        self._network_buffers.pop(tau, None)
        self._promised.pop(tau, None)
        self._send(Response(
            controller_id=self.controller.id,
            trigger_id=tau,
            kind=ResponseKind.NETWORK_WRITE,
            entry=sort_canonicals(buffer["messages"]),
            tainted=False,
            state_digest=buffer["digest"],
        ))

    # ------------------------------------------------------------------
    # Relay with JVM jitter
    # ------------------------------------------------------------------
    def _send(self, response: Response) -> None:
        if self.validator_channel is None:
            return
        response.sent_at = self.sim.now
        self.responses_sent += 1
        delay = self._jitter()
        self.sim.schedule(delay, self.validator_channel.send, self, response)

    def _jitter(self) -> float:
        """Long-tailed response-path latency, inflated by pipeline load."""
        profile = self.controller.profile
        utilization = self.controller.utilization()
        median = profile.jitter_median_ms * (
            1.0 + profile.jitter_load_factor * utilization * utilization)
        return median * math.exp(profile.jitter_sigma * self._rng.gauss(0.0, 1.0))

    # ------------------------------------------------------------------
    def handle_control_message(self, channel, message) -> None:
        """Validator-direction channel endpoint (no inbound traffic expected)."""


def _is_lldp_probe(message: Any) -> bool:
    return (isinstance(message, PacketOut)
            and message.packet is not None
            and isinstance(message.packet.payload, LldpPayload))
