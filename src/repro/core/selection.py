"""Deterministic pseudo-random selection of secondary controllers.

JURY replicates each trigger to "k randomly chosen controllers" (§IV).
Seeding the choice with the trigger id makes the selection pseudo-random
*and* reproducible without coordination: the replicator picks the
secondaries for an external trigger, and every controller module can
independently compute the same designated set when deciding whether to relay
a cache event for that trigger — no extra protocol messages needed.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple


def designated_secondaries(trigger_id: Tuple, candidates: Iterable[str],
                           k: int, exclude: Sequence[str] = (),
                           salt: str = "jury") -> List[str]:
    """Choose ``k`` secondaries for ``trigger_id`` from ``candidates``.

    The result is stable for a given (trigger id, candidate set, k, salt):
    every party computing it agrees. ``exclude`` removes the primary/origin.
    """
    pool = sorted(set(candidates) - set(exclude))
    if k <= 0 or not pool:
        return []
    rng = random.Random(f"{salt}/{trigger_id!r}")
    if k >= len(pool):
        return pool
    return sorted(rng.sample(pool, k))
