"""Controller responses streamed to the out-of-band validator.

Every response is the ``(id, τ, entry)`` triple of Algorithm 1 plus the
metadata JURY's mechanisms need: the taint flag (replicated-execution
responses), the responding replica's state digest (state-aware consensus,
§IV-C), and timing for detection-time accounting.

Response records are deliberately small on the wire (~tens of bytes in a
compact binary encoding) — validator traffic is a minor fraction of JURY's
network overhead next to replicated PACKET_INs (§VII-B.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


def sort_canonicals(items) -> Tuple:
    """Stable canonical ordering for heterogeneous canonical tuples.

    Canonicals mix ints, strings, and None, so plain tuple comparison can
    raise; ``repr`` gives a total order that is identical on every replica,
    which is all consensus comparison needs.
    """
    return tuple(sorted(items, key=repr))


class ResponseKind(enum.Enum):
    """What a response describes."""

    #: Actual network messages the primary (or a remote master) emitted.
    NETWORK_WRITE = "network"
    #: Cache event(s) for one trigger, relayed by one replica.
    CACHE_UPDATE = "cache"
    #: Captured (suppressed) side-effects of shadow execution at a secondary.
    REPLICA_RESULT = "replica"


@dataclass
class Response:
    """One ``(id, τ, entry)`` record as received by the validator."""

    controller_id: str
    trigger_id: Tuple
    kind: ResponseKind
    entry: Tuple
    tainted: bool = False
    state_digest: Tuple = ()
    sent_at: float = 0.0
    #: When the originating trigger was received (detection-time baseline).
    trigger_received_at: Optional[float] = None
    #: For CACHE_UPDATE: the node that originated the relayed event(s).
    origin: Optional[str] = None
    #: For REPLICA_RESULT: the primary named by the taint.
    primary_hint: Optional[str] = None
    #: The producing application declared this action non-deterministic
    #: (§VIII extension); consensus skips majority comparison when set.
    declared_non_deterministic: bool = False

    def wire_size(self) -> int:
        """Compact binary encoding estimate: header + digest + entry hash.

        The prototype ships entry *digests* plus a spooled full body; the
        on-path cost is the compact record.
        """
        return 40 + 4 * len(self.state_digest)

    @property
    def is_cache(self) -> bool:
        return self.kind == ResponseKind.CACHE_UPDATE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        taint = " tainted" if self.tainted else ""
        return (f"Response({self.controller_id}, {self.trigger_id}, "
                f"{self.kind.value}{taint})")

    def __reduce__(self):
        # Positional-tuple pickling: responses dominate the batch/verdict
        # frames the process backend ships, and the generic dataclass
        # reduce (per-instance __dict__) roughly doubles the frame size.
        return (Response, (self.controller_id, self.trigger_id, self.kind,
                           self.entry, self.tainted, self.state_digest,
                           self.sent_at, self.trigger_received_at,
                           self.origin, self.primary_hint,
                           self.declared_non_deterministic))
