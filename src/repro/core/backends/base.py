"""The :class:`ExecutionBackend` abstraction and its in-process backends.

A backend owns *how* a pipeline shard's work units execute:

* :class:`SerialBackend` — the inline path: ``flush_shard`` simply runs the
  shard's own ``_process_available`` loop on the parent thread. This is the
  pipeline's historical behaviour, byte for byte.
* :class:`FrameBackend` — shared machinery for the real backends
  (``threads``, ``processes``): the parent collects a
  :class:`~repro.core.backends.frames.BatchFrame` from the shard's queue,
  submits it to a worker hosting the shard's
  :class:`~repro.core.backends.shardcore.ShardCore`, and merges the
  resulting verdict deterministically.

Determinism under the simulator: submitting a frame schedules a **merge
barrier** at delay 0. The simulator runs same-instant events FIFO, so the
barrier fires after every flush of the current instant and merges verdicts
in submission order — which is exactly the serial path's flush order. All
decisions, alarms, and spans therefore land at the same simulated time,
in the same relative order, as the serial backend's.

On the synchronous ``drain()`` path (the benchmark loop; no simulated time
advances) frames are submitted one per shard per round and merged in shard
order, with one round of lookahead so workers chew on round *i+1* while the
parent merges round *i* — this is where the ``processes`` backend's real
parallelism pays.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import List, Tuple

from repro.core.backends.frames import BatchFrame, VerdictFrame
from repro.core.timeouts import StaticTimeout
from repro.errors import CheckpointError
from repro.obs import trace as obs_trace
from repro.obs.profile import merge_profile


class ExecutionBackend:
    """Scheduling strategy for pipeline shard work units."""

    #: Registry name (``JuryConfig.backend`` / ``--backend``).
    name: str = "?"
    #: True when ``flush_shard`` runs the shard inline on the parent
    #: (no frames, no merge); the pipeline keeps its historical fast path.
    inline: bool = True
    #: Class-level default so ``close()`` is safe on a backend that was
    #: never attached (attach may raise before setting instance state).
    _closed: bool = False

    def attach(self, pipeline) -> None:
        """Bind to a pipeline (called once from the pipeline constructor)."""
        self.pipeline = pipeline

    def flush_shard(self, shard, wakeup: bool = False) -> None:
        raise NotImplementedError

    def drain(self) -> None:
        """Synchronously process every queued response (benchmark path)."""
        raise NotImplementedError

    def shard_state(self, shard) -> dict:
        """One shard's decision state for a checkpoint.

        Inline backends read the shard directly; frame backends harvest
        their worker's ShardCore. Both return the same (unpickled) payload
        shape, so checkpoints are portable across backends.
        """
        return shard.core_state()

    def restore_shard(self, shard, payload: dict) -> None:
        """Rehydrate one shard from a :meth:`shard_state` payload."""
        shard.core_restore(payload)

    def close(self) -> None:
        """Release workers. Idempotent; parent-side results stay readable."""
        self._closed = True

    # Context-manager sugar so benches/tests can scope worker lifetime.
    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Inline execution on the parent thread (the default)."""

    name = "serial"
    inline = True

    def flush_shard(self, shard, wakeup: bool = False) -> None:
        shard._process_available()

    def drain(self) -> None:
        progressing = True
        while progressing:
            progressing = False
            for shard in self.pipeline._shards:
                if shard.queue or shard.overflow:
                    shard._process_available()
                    progressing = True


class FrameBackend(ExecutionBackend):
    """Collect → submit → barrier-merge machinery shared by real backends.

    Subclasses implement ``_start`` (spawn workers), ``_submit`` (hand a
    frame to shard's worker; must not block while the worker still owes a
    verdict — wait for it first) and ``_collect`` (block for the verdict).
    """

    inline = False

    def attach(self, pipeline) -> None:
        if not isinstance(pipeline.timeout, StaticTimeout):
            raise ValueError(
                f"backend {self.name!r} requires a StaticTimeout: adaptive "
                f"policies couple shards through observe() and would "
                f"diverge from the serial backend")
        self.pipeline = pipeline
        self.timeout_ms = pipeline.timeout.current()
        self._inflight: deque = deque()  # (shard, BatchFrame)
        self._barrier_scheduled = False
        self._closed = False
        self._start()

    def _bootstrap(self) -> dict:
        """ShardCore constructor kwargs for worker bootstrap."""
        pipeline = self.pipeline
        return {"k": pipeline.k, "timeout_ms": self.timeout_ms,
                "state_aware": pipeline.state_aware,
                "taint_classification": pipeline.taint_classification}

    # -- subclass surface ------------------------------------------------
    def _start(self) -> None:
        raise NotImplementedError

    def _submit(self, shard, frame: BatchFrame) -> None:
        raise NotImplementedError

    def _collect(self, shard, frame: BatchFrame) -> VerdictFrame:
        raise NotImplementedError

    def _snapshot_worker(self, index: int) -> bytes:
        """Pickled ShardCore snapshot from one worker (no frames owed)."""
        raise NotImplementedError

    def _restore_worker(self, index: int, blob: bytes) -> None:
        """Push a pickled ShardCore snapshot down to one worker."""
        raise NotImplementedError

    # -- checkpoint / restore --------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise CheckpointError(
                f"backend {self.name!r} is closed: its workers are gone, "
                f"so shard state can no longer be read or restored")

    def shard_state(self, shard) -> dict:
        """Harvest one worker's ShardCore state for a checkpoint.

        Merges every in-flight verdict first: a worker snapshot taken
        while the parent still owes merges would include decisions the
        parent-side Ψ/alarm/counter state has not absorbed — the snapshot
        must be an instant-boundary cut on both sides of the pipe.
        """
        self._ensure_open()
        self._merge_inflight()
        return pickle.loads(self._snapshot_worker(shard.index))

    def restore_shard(self, shard, payload: dict) -> None:
        """Push checkpoint state to the worker and re-arm parent mirrors.

        Also resets the crash-recovery piggyback basis (where the backend
        keeps one — see ``processes``): a worker killed after this point
        rehydrates from this snapshot, not from frame 0.
        """
        self._ensure_open()
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._restore_worker(shard.index, blob)
        records = payload["records"]
        live = {tau for tau, fields in records.items() if not fields[4]}
        shard._remote_open = len(live)
        heads = [deadline for deadline, _, tau in payload["deadlines"]
                 if tau in live]
        head = min(heads) if heads else None
        if head is not None:
            # A head already in the past (backpressured batch at
            # checkpoint time) fires immediately on restore.
            head = max(head, self.pipeline.sim.now)
        shard._remote_arm(head, drained=True)

    # -- simulator path --------------------------------------------------
    def flush_shard(self, shard, wakeup: bool = False) -> None:
        frame = shard._collect_frame(wakeup=wakeup)
        if frame is None:
            return
        self._dispatch(shard, frame)

    def _dispatch(self, shard, frame: BatchFrame) -> None:
        pipeline = self.pipeline
        if pipeline.tracer is not None:
            pipeline.tracer.emit(
                pipeline.sim.now, ("engine", shard.index),
                obs_trace.ENGINE_SUBMIT, detail=f"seq={frame.seq}",
                n=len(frame.items))
        if pipeline.metrics is not None:
            pipeline.metrics.counter("backend_frames_total",
                                     backend=self.name).inc()
            pipeline.metrics.counter("backend_frame_responses_total",
                                     backend=self.name).inc(len(frame.items))
        self._submit(shard, frame)
        self._inflight.append((shard, frame))
        if not self._barrier_scheduled:
            self._barrier_scheduled = True
            pipeline.sim.schedule(0.0, self._merge_barrier)

    def _merge_barrier(self) -> None:
        self._barrier_scheduled = False
        self._merge_inflight()
        sink = self.pipeline.snapshot_sink
        if sink is not None:
            sink.observe(self.pipeline.sim.now)

    def _merge_inflight(self) -> None:
        while self._inflight:
            shard, frame = self._inflight.popleft()
            self._merge_one(shard, frame)

    def _merge_one(self, shard, frame: BatchFrame) -> None:
        verdict = self._collect(shard, frame)
        pipeline = self.pipeline
        if verdict.profile is not None and pipeline.metrics is not None:
            merge_profile(pipeline.metrics, self.name, shard.index,
                          verdict.profile)
        if pipeline.tracer is not None:
            pipeline.tracer.emit(
                pipeline.sim.now, ("engine", shard.index),
                obs_trace.ENGINE_EXECUTE, detail=f"seq={frame.seq}",
                events=len(verdict.events))
        shard._merge_verdict(frame, verdict)
        if pipeline.tracer is not None:
            pipeline.tracer.emit(
                pipeline.sim.now, ("engine", shard.index),
                obs_trace.ENGINE_MERGE, detail=f"seq={frame.seq}",
                open_records=verdict.open_records)

    # -- synchronous path ------------------------------------------------
    def drain(self) -> None:
        self._merge_inflight()  # anything the simulator left in flight
        pipeline = self.pipeline
        pending: List[Tuple] = []  # previous round, being chewed by workers
        while True:
            submitted: List[Tuple] = []
            for shard in pipeline._shards:
                frame = shard._collect_frame()
                if frame is not None:
                    self._submit(shard, frame)
                    submitted.append((shard, frame))
            # Merge the previous round while workers run the new one.
            for shard, frame in pending:
                self._merge_one(shard, frame)
            if not submitted:
                break
            pending = submitted
