"""Worker-process backend: real CPU parallelism for shard execution.

One long-lived worker process per shard hosts that shard's
:class:`~repro.core.backends.shardcore.ShardCore`; the parent exchanges
pickled batch/verdict frames over a duplex pipe. Discipline:

* **One frame in flight per worker.** Before submitting a new frame the
  parent collects the previous verdict, so a send never deadlocks against
  a worker blocked writing a large verdict into a full pipe.
* **Snapshots ride the verdicts.** Every ``snapshot_every`` frames the
  parent sets ``want_snapshot`` and the worker piggybacks its pickled
  state; the parent keeps the frames submitted since that basis.
* **Death → retry once → degrade.** A dead pipe (EOF/OSError) or a verdict
  timeout counts as a worker death: the parent respawns the worker,
  restores the last snapshot, replays the since-snapshot history
  (discarding verdicts already merged), and resubmits the lost frames. If
  the replacement dies during recovery the shard **degrades**: its
  ShardCore is rebuilt in-parent from the same snapshot+history and all
  subsequent frames run inline — execution continues serially, bit-for-bit.

``inject_crashes`` gives tests a deterministic handle on this machinery
without real fault injection: budgeted crashes are consumed at submit time
(the worker is told to exit before the frame) and during recovery (the
replacement "dies", forcing the degrade path).
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from typing import List, Optional

from repro.core.backends.base import FrameBackend
from repro.core.backends.frames import BatchFrame, VerdictFrame
from repro.core.backends.shardcore import ShardCore
from repro.obs import trace as obs_trace
from repro.obs.profile import StageProfiler


def _worker_main(conn, bootstrap: dict, profile: bool = False) -> None:
    """Worker process loop: recv control tuples, send verdicts."""
    core = ShardCore(**bootstrap)
    # Wall-clock profiling lives here, inside the worker; durations ride
    # home on the verdict frame like snapshots do. A "restore" duration is
    # held in the profiler and ships with the next frame verdict.
    profiler = StageProfiler() if profile else None
    try:
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "frame":
                if profiler is None:
                    conn.send(core.process(msg[1]))
                else:
                    frame = msg[1]
                    started = profiler.now()
                    verdict = core.process(frame)
                    profiler.observe("wakeup" if frame.wakeup else "batch",
                                     profiler.now() - started)
                    verdict.profile = profiler.take()
                    conn.send(verdict)
            elif tag == "snapshot":  # checkpoint harvest (no frame owed)
                conn.send(core.snapshot())
            elif tag == "restore":
                started = None if profiler is None else profiler.now()
                core = ShardCore(**bootstrap)
                if msg[1] is not None:
                    core.restore(msg[1])
                if profiler is not None:
                    profiler.observe("restore", profiler.now() - started)
                conn.send(("ok",))
            elif tag == "crash":  # test hook: die without cleanup
                os._exit(17)
            else:  # "exit"
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return


class _WorkerDied(Exception):
    pass


class _Worker:
    """Parent-side bookkeeping for one shard's worker process."""

    def __init__(self, index: int):
        self.index = index
        self.proc = None
        self.conn = None
        #: Frames submitted, verdict not yet received (FIFO).
        self.pending: deque = deque()
        #: Verdicts received ahead of collection (FIFO).
        self.ready: deque = deque()
        #: Last piggybacked snapshot and the frames submitted since it.
        self.snapshot: Optional[bytes] = None
        self.history: List[BatchFrame] = []
        self.frames_since_snapshot = 0
        #: Non-None once degraded: the in-parent ShardCore running inline.
        self.core: Optional[ShardCore] = None
        #: Test hook: pending deterministic crashes (see inject_crashes).
        self.crash_budget = 0


class ProcessesBackend(FrameBackend):
    """One worker process per shard; frames pickled over pipes."""

    name = "processes"

    def __init__(self, worker_timeout_s: float = 60.0,
                 snapshot_every: int = 32):
        self.worker_timeout_s = worker_timeout_s
        self.snapshot_every = snapshot_every

    def _start(self) -> None:
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self._boot = self._bootstrap()
        self._workers = [_Worker(i) for i in range(self.pipeline.shards)]
        for worker in self._workers:
            self._spawn(worker)
        if self.pipeline.metrics is not None:
            self.pipeline.metrics.gauge(
                "backend_workers", backend=self.name).set(len(self._workers))

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._boot, self.pipeline.profile),
            name=f"jury-shard-{worker.index}", daemon=True)
        proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn

    # ------------------------------------------------------------------
    # Frame exchange
    # ------------------------------------------------------------------
    def _submit(self, shard, frame: BatchFrame) -> None:
        worker = self._workers[shard.index]
        while worker.pending and worker.core is None:
            self._await_verdict(worker)
        if worker.core is not None:  # degraded: run inline, stay ordered
            worker.ready.append(worker.core.process(frame))
            return
        worker.frames_since_snapshot += 1
        if worker.frames_since_snapshot >= self.snapshot_every:
            frame.want_snapshot = True
        if worker.crash_budget > 0:
            worker.crash_budget -= 1
            try:
                worker.conn.send(("crash",))
            except OSError:  # jury: ignore[H403] — already-dead worker
                pass
        worker.pending.append(frame)
        worker.history.append(frame)
        try:
            worker.conn.send(("frame", frame))
        except OSError:
            self._recover(worker)

    def _collect(self, shard, frame: BatchFrame) -> VerdictFrame:
        worker = self._workers[shard.index]
        while not worker.ready:
            self._await_verdict(worker)
        return worker.ready.popleft()

    def _await_verdict(self, worker: _Worker) -> None:
        try:
            if not worker.conn.poll(self.worker_timeout_s):
                raise _WorkerDied(
                    f"no verdict within {self.worker_timeout_s}s")
            verdict = worker.conn.recv()
        except (EOFError, OSError, _WorkerDied):
            self._recover(worker)
            return
        worker.pending.popleft()
        if verdict.snapshot is not None:
            worker.snapshot = verdict.snapshot
            worker.history = list(worker.pending)
            worker.frames_since_snapshot = len(worker.pending)
            verdict.snapshot = None  # parent keeps it; frame stays light
        worker.ready.append(verdict)

    # ------------------------------------------------------------------
    # Checkpoint / restore (FrameBackend surface)
    # ------------------------------------------------------------------
    def _snapshot_worker(self, index: int) -> bytes:
        """Harvest one worker's ShardCore for a pipeline checkpoint.

        Waits out any owed verdicts first (one frame in flight per worker),
        asks the worker for a snapshot, and makes it the new piggyback
        basis: the since-snapshot history is empty by construction. A death
        during the harvest goes through the normal recover path and the
        harvest is retried against the replacement (or the degraded
        in-parent core).
        """
        worker = self._workers[index]
        while worker.pending and worker.core is None:
            self._await_verdict(worker)
        if worker.core is None:
            try:
                blob = self._roundtrip(worker, ("snapshot",))
            except (EOFError, OSError, _WorkerDied):
                self._recover(worker)
                if worker.core is None:
                    blob = self._roundtrip(worker, ("snapshot",))
        if worker.core is not None:  # degraded: snapshot the inline core
            blob = worker.core.snapshot()
        worker.snapshot = blob
        worker.history = []
        worker.frames_since_snapshot = 0
        return blob

    def _restore_worker(self, index: int, blob: bytes) -> None:
        """Rehydrate one worker from a checkpoint's shard payload.

        Resets the crash-recovery basis to this snapshot — a worker killed
        after the restore replays from here, not from frame 0. If the
        worker (or its replacement) dies mid-restore the shard falls back
        to an in-parent core, same as the degrade path.
        """
        worker = self._workers[index]
        while worker.pending and worker.core is None:
            self._await_verdict(worker)
        worker.ready.clear()
        worker.pending.clear()
        worker.snapshot = blob
        worker.history = []
        worker.frames_since_snapshot = 0
        if worker.core is not None:  # degraded: rebuild the inline core
            core = ShardCore(**self._boot)
            core.restore(blob)
            worker.core = core
            return
        try:
            self._roundtrip(worker, ("restore", blob))
        except (EOFError, OSError, _WorkerDied):
            self._reap(worker)
            try:
                self._spawn(worker)
                self._roundtrip(worker, ("restore", blob))
            except (EOFError, OSError, _WorkerDied):
                self._count("backend_degraded_total")
                core = ShardCore(**self._boot)
                core.restore(blob)
                worker.core = core

    # ------------------------------------------------------------------
    # Death handling: respawn + replay once, then degrade to inline
    # ------------------------------------------------------------------
    def _recover(self, worker: _Worker) -> None:
        self._count("backend_worker_deaths_total")
        recorder = self.pipeline.recorder
        if recorder is not None:
            now = self.pipeline.sim.now
            recorder.record(now, "worker", ("engine", worker.index),
                            verdict="death", detail=f"shard {worker.index}",
                            backend=self.name)
            recorder.trigger("worker-death", now)
        self._reap(worker)
        pending_seqs = {f.seq for f in worker.pending}
        try:
            if worker.crash_budget > 0:  # test hook: replacement dies too
                worker.crash_budget -= 1
                raise _WorkerDied("injected crash during recovery")
            self._spawn(worker)
            self._roundtrip(worker, ("restore", worker.snapshot))
            replays = list(worker.history)
            for index, frame in enumerate(replays):
                verdict = self._roundtrip(worker, ("frame", frame))
                if verdict.snapshot is not None:
                    worker.snapshot = verdict.snapshot
                    worker.history = list(replays[index + 1:])
                    worker.frames_since_snapshot = len(worker.history)
                    verdict.snapshot = None
                if frame.seq in pending_seqs:
                    worker.ready.append(verdict)
            worker.pending.clear()
            self._count("backend_worker_restarts_total")
        except (EOFError, OSError, _WorkerDied):
            self._degrade(worker, pending_seqs)

    def _roundtrip(self, worker: _Worker, msg):
        worker.conn.send(msg)
        if not worker.conn.poll(self.worker_timeout_s):
            raise _WorkerDied("no reply during recovery")
        return worker.conn.recv()

    def _degrade(self, worker: _Worker, pending_seqs) -> None:
        self._count("backend_degraded_total")
        pipeline = self.pipeline
        recorder = pipeline.recorder
        if recorder is not None:
            now = pipeline.sim.now
            recorder.record(now, "worker", ("engine", worker.index),
                            verdict="degrade",
                            detail=f"shard {worker.index} runs inline",
                            backend=self.name)
            recorder.trigger("worker-degrade", now)
        if pipeline.tracer is not None:
            pipeline.tracer.emit(
                pipeline.sim.now, ("engine", worker.index),
                obs_trace.ENGINE_DEGRADE,
                detail=f"shard {worker.index} runs inline")
        self._reap(worker)
        core = ShardCore(**self._boot)
        if worker.snapshot is not None:
            core.restore(worker.snapshot)
        for frame in worker.history:
            verdict = core.process(frame)
            if frame.seq in pending_seqs:
                worker.ready.append(verdict)
        worker.pending.clear()
        worker.core = core

    def _reap(self, worker: _Worker) -> None:
        if worker.proc is not None:
            if worker.proc.is_alive():
                worker.proc.terminate()
            worker.proc.join(timeout=5.0)
            worker.proc = None
        if worker.conn is not None:
            worker.conn.close()
            worker.conn = None

    def _count(self, name: str) -> None:
        if self.pipeline.metrics is not None:
            self.pipeline.metrics.counter(name, backend=self.name).inc()

    # ------------------------------------------------------------------
    # Test hook and teardown
    # ------------------------------------------------------------------
    def inject_crashes(self, shard_index: int, count: int = 1) -> None:
        """Arm ``count`` deterministic worker deaths on one shard.

        The first is consumed at the next submit (the worker exits before
        processing the frame); a second is consumed during the ensuing
        recovery, killing the replacement and forcing the degrade path.
        """
        self._workers[shard_index].crash_budget += count

    @property
    def degraded_shards(self) -> List[int]:
        return [w.index for w in self._workers if w.core is not None]

    def close(self) -> None:
        # getattr on _workers (not a truthy _closed default): close() must
        # be a no-op both after a previous close and when attach never ran
        # (e.g. the timeout-policy validation raised before _start).
        if self._closed:
            return
        self._closed = True
        for worker in getattr(self, "_workers", []):
            if worker.conn is not None and worker.proc is not None \
                    and worker.proc.is_alive():
                try:
                    worker.conn.send(("exit",))
                except OSError:  # jury: ignore[H403] — worker died first
                    pass
        for worker in getattr(self, "_workers", []):
            if worker.proc is not None:
                worker.proc.join(timeout=2.0)
            self._reap(worker)
