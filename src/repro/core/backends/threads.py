"""Worker-thread backend: one long-lived thread per shard.

Each thread owns its shard's :class:`~repro.core.backends.shardcore.ShardCore`
and processes frames FIFO off a queue, so per-shard frame order — the
determinism contract — is preserved by construction. Under CPython's GIL
this buys concurrency (merges overlap worker compute) but little CPU
parallelism; it exists as the cheap-to-debug sibling of ``processes`` —
same frames, same merge, no pickling, no worker lifecycle.
"""

from __future__ import annotations

import queue
import threading
from typing import List

from repro.core.backends.base import FrameBackend
from repro.core.backends.frames import BatchFrame, VerdictFrame
from repro.core.backends.shardcore import ShardCore
from repro.obs.profile import StageProfiler


class _ShardThread:
    def __init__(self, index: int, bootstrap: dict, profile: bool = False):
        self.inbox: "queue.SimpleQueue" = queue.SimpleQueue()
        self.outbox: "queue.SimpleQueue" = queue.SimpleQueue()
        # Backend workers are real OS threads by design; determinism comes
        # from FIFO frame order plus the parent-side barrier merge.
        self.thread = threading.Thread(  # jury: ignore[D105]
            target=self._run, args=(bootstrap, profile),
            name=f"jury-shard-{index}", daemon=True)
        self.thread.start()

    def _run(self, bootstrap: dict, profile: bool) -> None:
        core = ShardCore(**bootstrap)
        # Wall-clock profiling lives here, inside the worker, never in the
        # validator hot path; durations ride home on the verdict frame.
        profiler = StageProfiler() if profile else None
        while True:
            frame = self.inbox.get()
            if frame is None:
                return
            try:
                # Control tuples (checkpoint/restore) share the frame FIFO
                # so they land between batches, never mid-frame.
                if isinstance(frame, tuple):
                    if frame[0] == "snapshot":
                        self.outbox.put(core.snapshot())
                    else:  # ("restore", blob)
                        core = ShardCore(**bootstrap)
                        if frame[1] is not None:
                            core.restore(frame[1])
                        self.outbox.put(("ok",))
                elif profiler is None:
                    self.outbox.put(core.process(frame))
                else:
                    started = profiler.now()
                    verdict = core.process(frame)
                    profiler.observe("wakeup" if frame.wakeup else "batch",
                                     profiler.now() - started)
                    verdict.profile = profiler.take()
                    self.outbox.put(verdict)
            # Shipped to the parent and re-raised at _collect — the worker
            # must never die holding the shard's FIFO.
            except BaseException as exc:  # jury: ignore[H404]
                self.outbox.put(exc)


class ThreadsBackend(FrameBackend):
    """One worker thread per shard; frames exchanged over queues."""

    name = "threads"

    def _start(self) -> None:
        bootstrap = self._bootstrap()
        profile = self.pipeline.profile
        self._workers: List[_ShardThread] = [
            _ShardThread(i, bootstrap, profile)
            for i in range(self.pipeline.shards)]

    def _submit(self, shard, frame: BatchFrame) -> None:
        self._workers[shard.index].inbox.put(frame)

    def _collect(self, shard, frame: BatchFrame) -> VerdictFrame:
        verdict = self._workers[shard.index].outbox.get()
        if isinstance(verdict, BaseException):
            raise verdict
        return verdict

    def _snapshot_worker(self, index: int) -> bytes:
        worker = self._workers[index]
        worker.inbox.put(("snapshot",))
        blob = worker.outbox.get()
        if isinstance(blob, BaseException):
            raise blob
        return blob

    def _restore_worker(self, index: int, blob: bytes) -> None:
        worker = self._workers[index]
        worker.inbox.put(("restore", blob))
        ack = worker.outbox.get()
        if isinstance(ack, BaseException):
            raise ack

    def close(self) -> None:
        # getattr: close() must be safe even when attach never ran (the
        # timeout-policy validation raises before _start spawns workers).
        if self._closed:
            return
        self._closed = True
        for worker in getattr(self, "_workers", []):
            worker.inbox.put(None)
        for worker in getattr(self, "_workers", []):
            worker.thread.join(timeout=5.0)
