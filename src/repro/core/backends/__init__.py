"""Execution backends: how pipeline shard work units are scheduled.

``resolve_backend`` is the single construction point — the pipeline, the
config layer, the CLI, and the bench all go through it, so ``"serial"``,
``"threads"`` and ``"processes"`` mean the same thing everywhere. Passing
an :class:`ExecutionBackend` instance through is allowed for tests that
need a pre-configured backend (e.g. a ``ProcessesBackend`` with a short
worker timeout or armed crash injection).
"""

from __future__ import annotations

from repro.core.backends.base import ExecutionBackend, FrameBackend, SerialBackend
from repro.core.backends.frames import BatchFrame, DecisionRecord, VerdictFrame
from repro.core.backends.processes import ProcessesBackend
from repro.core.backends.shardcore import ShardCore
from repro.core.backends.threads import ThreadsBackend

#: Name → zero-argument constructor for every built-in backend.
BACKENDS = {
    "serial": SerialBackend,
    "threads": ThreadsBackend,
    "processes": ProcessesBackend,
}

BACKEND_NAMES = tuple(BACKENDS)


def resolve_backend(backend) -> ExecutionBackend:
    """Normalise a backend name or instance to an (unattached) instance."""
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        return SerialBackend()
    try:
        factory = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"expected one of {', '.join(BACKENDS)}") from None
    return factory()


__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "BatchFrame",
    "DecisionRecord",
    "ExecutionBackend",
    "FrameBackend",
    "ProcessesBackend",
    "SerialBackend",
    "ShardCore",
    "ThreadsBackend",
    "VerdictFrame",
    "resolve_backend",
]
