"""Worker-side shard state: the portable half of a pipeline shard.

A :class:`ShardCore` owns exactly the per-trigger state a
:class:`~repro.core.pipeline._Shard` keeps — Vτ/Nτ records, the coalesced
θτ deadline heap, the recently-decided late-drop window — and processes
:class:`~repro.core.backends.frames.BatchFrame` work units with the same
inlined loop semantics as ``_Shard._process_available``. It holds **no**
shared state: instead of touching the merged Ψid view or the observability
stack it appends to an ordered event log that the parent replays (see
``frames.py``), which is what lets the same class run in a worker process,
a worker thread, or inline on the parent after a degrade.

Determinism contract: given the same frame sequence, a ShardCore produces
the same event log as the serial shard produces side effects, in the same
order — the backend differential suite pins this at N∈{1,2,4,8}.
"""

from __future__ import annotations

import heapq
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.backends.frames import (
    EV_DECISION,
    EV_LATE,
    EV_PSI_CACHE,
    EV_PSI_PROGRESS,
    BatchFrame,
    DecisionRecord,
    VerdictFrame,
)
from repro.core.consensus import (
    _merge_network,
    evaluate_consensus,
    unanimity_fast_consensus,
)
from repro.core.responses import Response, ResponseKind
from repro.core.validator import classify_external, digest_progress

_CACHE_UPDATE = ResponseKind.CACHE_UPDATE

#: Counter names shipped back per frame; the parent folds them into the
#: shard's :class:`~repro.core.pipeline.ShardStats` (``max_batch`` by max,
#: the rest by sum — ``decided``/``alarmed`` stay parent-side because only
#: the parent sees alarms).
DELTA_KEYS = ("processed", "batches", "batched_responses", "max_batch",
              "timer_wakeups", "fastpath_decisions", "slowpath_decisions",
              "late_responses")


@dataclass
class _CoreRecord:
    """Vτ / Nτ / θτ on a worker (mirror of ``_ShardRecord``)."""

    responses: List[Response] = field(default_factory=list)
    count: int = 0
    first_at: float = 0.0
    deadline: float = 0.0
    decided: bool = False


class ShardCore:
    """Processes batch frames for one shard; emits ordered event logs."""

    def __init__(self, k: int, timeout_ms: float, state_aware: bool = True,
                 taint_classification: bool = True):
        self.k = k
        self.timeout_ms = timeout_ms
        self.state_aware = state_aware
        self.taint_classification = taint_classification
        self.records: Dict[Tuple, _CoreRecord] = {}
        self.recently_decided: Dict[Tuple, float] = {}
        self.deadlines: List[Tuple[float, int, Tuple]] = []
        self._deadline_seq = 0
        # Bounded memos, same bounds as the pipeline's (they repeat heavily).
        self._progress_memo: Dict[Tuple, Optional[int]] = {}
        self._network_memo: Dict[Tuple, Tuple] = {}

    # ------------------------------------------------------------------
    # Frame processing (the worker hot loop)
    # ------------------------------------------------------------------
    def process(self, frame: BatchFrame) -> VerdictFrame:
        events: List[Tuple] = []
        stats = {key: 0 for key in DELTA_KEYS}
        if frame.wakeup:
            stats["timer_wakeups"] = 1
        records = self.records
        recently_decided = self.recently_decided
        deadlines = self.deadlines
        full_count = 2 * self.k + 2
        now = frame.now
        batch = 0
        for arrived_at, response in frame.items:
            batch += 1
            if deadlines and deadlines[0][0] <= arrived_at:
                self._fire_deadlines(arrived_at, now, events, stats)
            tau = response.trigger_id
            if tau in recently_decided:
                stats["late_responses"] += 1
                events.append((EV_LATE, tau, response.controller_id))
                continue
            record = records.get(tau)
            if record is None:
                record = _CoreRecord(first_at=arrived_at)
                record.deadline = arrived_at + self.timeout_ms
                self._deadline_seq += 1
                heapq.heappush(deadlines,
                               (record.deadline, self._deadline_seq, tau))
                records[tau] = record
            record.count += 1
            record.responses.append(response)
            cid = response.controller_id
            if response.kind is _CACHE_UPDATE:
                events.append((EV_PSI_CACHE, cid, response.entry))
            digest = response.state_digest
            if digest:
                progress = self._progress_of(digest)
                if progress is not None:
                    events.append((EV_PSI_PROGRESS, cid, progress))
            if record.count >= full_count:
                self._decide(tau, record, False, now, events, stats)
        stats["processed"] = batch
        if batch:
            stats["batches"] = 1
            stats["batched_responses"] = batch
            stats["max_batch"] = batch
        if frame.drained:
            self._fire_deadlines(now, now, events, stats)
        return VerdictFrame(
            shard=frame.shard, seq=frame.seq, events=tuple(events),
            stats_delta={k: v for k, v in stats.items() if v},
            next_deadline=self._peek_deadline(),
            open_records=len(records),
            snapshot=self.snapshot() if frame.want_snapshot else None)

    def _fire_deadlines(self, upto: float, now: float, events: List[Tuple],
                        stats: Dict[str, int]) -> None:
        while self.deadlines and self.deadlines[0][0] <= upto:
            _, _, tau = heapq.heappop(self.deadlines)
            record = self.records.get(tau)
            if record is None or record.decided:
                continue  # decided at full count; heap entry is stale
            self._decide(tau, record, True, now, events, stats)

    def _peek_deadline(self) -> Optional[float]:
        while self.deadlines and self.deadlines[0][2] not in self.records:
            heapq.heappop(self.deadlines)
        return self.deadlines[0][0] if self.deadlines else None

    def _decide(self, tau: Tuple, record: _CoreRecord, timed_out: bool,
                now: float, events: List[Tuple],
                stats: Dict[str, int]) -> None:
        record.decided = True
        responses = record.responses
        external = classify_external(record.count, responses, self.k,
                                     self.taint_classification)
        outcome = unanimity_fast_consensus(responses, external,
                                           self.state_aware,
                                           self._merged_network)
        fastpath = outcome is not None
        if fastpath:
            stats["fastpath_decisions"] += 1
        else:
            stats["slowpath_decisions"] += 1
            outcome = evaluate_consensus(responses, self.k, external,
                                         state_aware=self.state_aware)
        received = [r.trigger_received_at for r in responses
                    if r.trigger_received_at is not None]
        baseline = min(received) if received else record.first_at
        detection_ms = max(0.0, now - baseline)
        events.append((EV_DECISION, DecisionRecord(
            trigger_id=tau, count=record.count, external=external,
            timed_out=timed_out, detection_ms=detection_ms,
            fastpath=fastpath, outcome=outcome,
            responses=tuple(responses))))
        del self.records[tau]
        self.recently_decided[tau] = now
        if len(self.recently_decided) > 20_000:
            horizon = now - 20.0 * self.timeout_ms
            self.recently_decided = {
                t_id: decided
                for t_id, decided in self.recently_decided.items()
                if decided >= horizon}

    # ------------------------------------------------------------------
    # Memoised helpers (bounds mirror ValidationPipeline's)
    # ------------------------------------------------------------------
    def _progress_of(self, digest: Tuple) -> Optional[int]:
        memo = self._progress_memo
        cached = memo.get(digest)
        if cached is None and digest not in memo:
            cached = digest_progress(digest)
            if len(memo) > 4096:
                memo.clear()
            memo[digest] = cached
        return cached

    def _merged_network(self, network: List[Response]) -> Tuple:
        if not network:
            return ()
        if len(network) == 1:
            entry = network[0].entry
            cached = self._network_memo.get(entry)
            if cached is None:
                cached = _merge_network(network)
                if len(self._network_memo) > 2048:
                    self._network_memo.clear()
                self._network_memo[entry] = cached
            return cached
        return _merge_network(network)

    # ------------------------------------------------------------------
    # Snapshot / restore (worker bootstrap after a death)
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Pickled decision state — everything but the (pure) memos."""
        return pickle.dumps({
            "records": {
                tau: (tuple(r.responses), r.count, r.first_at, r.deadline,
                      r.decided)
                for tau, r in self.records.items()},
            "recently_decided": dict(self.recently_decided),
            "deadlines": list(self.deadlines),
            "deadline_seq": self._deadline_seq,
        }, protocol=pickle.HIGHEST_PROTOCOL)

    def restore(self, payload: bytes) -> None:
        """Load a :meth:`snapshot` — the replacement worker's bootstrap."""
        data = pickle.loads(payload)
        self.records = {
            tau: _CoreRecord(responses=list(fields[0]), count=fields[1],
                             first_at=fields[2], deadline=fields[3],
                             decided=fields[4])
            for tau, fields in data["records"].items()}
        self.recently_decided = dict(data["recently_decided"])
        self.deadlines = list(data["deadlines"])
        heapq.heapify(self.deadlines)
        self._deadline_seq = data["deadline_seq"]
