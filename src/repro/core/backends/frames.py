"""Batch / verdict frames exchanged between the pipeline and its workers.

A :class:`BatchFrame` carries one shard's pending arrivals (collected by the
parent under the same ``batch_max`` / overflow discipline the serial path
uses) to wherever the shard's :class:`~repro.core.backends.shardcore.ShardCore`
lives — an in-process call, a worker thread, or a worker process over a
pipe. The worker answers with a :class:`VerdictFrame`: an **ordered event
log** (Ψ observations, late drops, decisions) plus counter deltas.

The event log is the heart of the equivalence argument: the parent replays
it in order against the shared state and the real observability stack, so a
decision's staleness/policy checks see exactly the Ψ prefix they would have
seen had the serial path processed the same responses inline. Everything in
a frame is picklable by construction — plain tuples, ``Response`` records
(compact ``__reduce__``), and ``ConsensusOutcome`` dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.consensus import ConsensusOutcome

# Event-log tags (first element of each event tuple).
EV_PSI_CACHE = 0     #: ``(tag, controller_id, entry)`` — cache relay seen
EV_PSI_PROGRESS = 1  #: ``(tag, controller_id, progress)`` — digest progress
EV_LATE = 2          #: ``(tag, trigger_id, controller_id)`` — late drop
EV_DECISION = 3      #: ``(tag, DecisionRecord)`` — a trigger decided


@dataclass
class DecisionRecord:
    """One decided trigger, minus everything the parent recomputes.

    The worker runs classification and consensus only; the parent reruns
    the (cheap, pure) sanity check and the Ψ-dependent staleness/policy
    checks through the unmodified
    :meth:`~repro.core.validator.DecisionCore._post_consensus_alarms`, so
    alarm order, spans, and metrics are the serial path's by construction.
    """

    trigger_id: Tuple
    count: int
    external: bool
    timed_out: bool
    detection_ms: float
    fastpath: bool
    outcome: ConsensusOutcome
    responses: Tuple


@dataclass
class BatchFrame:
    """One shard's work unit: responses collected at a simulated instant."""

    shard: int
    seq: int
    now: float
    items: Tuple  #: ``((arrived_at, Response), ...)`` in arrival order
    #: Queue and overflow fully drained by this collection — the worker
    #: fires θτ deadlines up to ``now``, as the serial drain path would.
    drained: bool
    #: θτ wakeup frame (may carry zero items); counts a timer wakeup.
    wakeup: bool = False
    #: Parent requests a state snapshot piggybacked on the verdict.
    want_snapshot: bool = False


@dataclass
class VerdictFrame:
    """The worker's answer to one :class:`BatchFrame`."""

    shard: int
    seq: int
    events: Tuple  #: ordered log of EV_* tuples (see module docstring)
    stats_delta: dict = field(default_factory=dict)
    #: Earliest armed θτ deadline after this frame (None: heap empty).
    next_deadline: Optional[float] = None
    #: Undecided triggers still held by the worker (pending_count mirror).
    open_records: int = 0
    #: Pickled ShardCore state, present iff the frame asked for one.
    snapshot: Optional[bytes] = None
    #: Wall-clock profile delta (repro.obs.profile) accumulated by the
    #: worker since its last shipment: ``{stage: (count, total_s, min_s,
    #: max_s)}``. Rides the verdict exactly like the snapshot does; None
    #: when profiling is off or nothing was measured.
    profile: Optional[dict] = None
