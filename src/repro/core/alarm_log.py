"""Structured alarm logging for administrators.

"In event of an alarm, JURY extracts information about the offending
controller, trigger and the associated response, and presents it to the
administrator for further action" (§V). :class:`AlarmLog` subscribes to a
validator and renders that presentation: an in-memory ring of structured
records, JSON-lines export for tooling, and a human-readable tail.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import IO, Deque, Dict, List, Optional

from repro.core.alarms import Alarm
from repro.core.validator import Validator


@dataclass
class AlarmRecord:
    """One alarm, flattened for export."""

    time_ms: float
    reason: str
    offending_controller: Optional[str]
    trigger_id: str
    detail: str
    n_responses: int

    def to_dict(self) -> Dict:
        return {
            "time_ms": round(self.time_ms, 3),
            "reason": self.reason,
            "offending_controller": self.offending_controller,
            "trigger_id": self.trigger_id,
            "detail": self.detail,
            "n_responses": self.n_responses,
        }


class AlarmLog:
    """Collects validator alarms into exportable records."""

    def __init__(self, validator: "Validator", capacity: int = 10_000,
                 stream: Optional[IO[str]] = None):
        # ``validator`` is duck-typed: anything exposing ``on_alarm`` works,
        # including ValidationPipeline (same alarm-hook surface).
        self.records: Deque[AlarmRecord] = deque(maxlen=capacity)
        self.stream = stream
        self.total = 0
        self._previous_hook = validator.on_alarm
        validator.on_alarm = self._on_alarm

    def _on_alarm(self, alarm: Alarm) -> None:
        record = AlarmRecord(
            time_ms=alarm.raised_at,
            reason=alarm.reason.value,
            offending_controller=alarm.offending_controller,
            trigger_id=repr(alarm.trigger_id),
            detail=alarm.detail,
            n_responses=len(alarm.responses),
        )
        self.records.append(record)
        self.total += 1
        if self.stream is not None:
            self.stream.write(json.dumps(record.to_dict()) + "\n")
        if self._previous_hook is not None:
            self._previous_hook(alarm)

    # ------------------------------------------------------------------
    def by_controller(self) -> Dict[str, int]:
        """Alarm counts per blamed controller."""
        counts: Dict[str, int] = {}
        for record in self.records:
            key = record.offending_controller or "<unknown>"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def by_reason(self) -> Dict[str, int]:
        """Alarm counts per detection mechanism."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def to_jsonl(self) -> str:
        """All retained records as JSON lines."""
        return "\n".join(json.dumps(r.to_dict()) for r in self.records)

    def tail(self, count: int = 10) -> List[str]:
        """The most recent alarms, human-readable."""
        recent = list(self.records)[-count:]
        return [f"[{r.time_ms:9.1f} ms] {r.reason:<20} "
                f"controller={r.offending_controller or '?':<4} {r.detail}"
                for r in recent]


# ----------------------------------------------------------------------
# File round-trip (offline diagnosis: repro.obs.diagnose)
# ----------------------------------------------------------------------

def dump_alarm_log(log: AlarmLog, path: str) -> None:
    """Write an alarm log as JSON lines (the ``to_jsonl`` encoding)."""
    with open(path, "w", encoding="utf-8") as handle:
        text = log.to_jsonl()
        if text:
            handle.write(text)
            handle.write("\n")


def load_alarm_records(path: str) -> List[AlarmRecord]:
    """Read alarm records back from a JSONL file written by ``dump_alarm_log``.

    Raises ``ValueError`` on malformed lines or missing fields, so CLI
    callers can surface a usage error instead of a traceback.
    """
    records: List[AlarmRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON alarm record: {exc}") from exc
            if not isinstance(payload, dict):
                raise ValueError(
                    f"{path}:{lineno}: alarm record must be an object")
            try:
                records.append(AlarmRecord(
                    time_ms=float(payload["time_ms"]),
                    reason=str(payload["reason"]),
                    offending_controller=payload.get("offending_controller"),
                    trigger_id=str(payload["trigger_id"]),
                    detail=str(payload.get("detail", "")),
                    n_responses=int(payload.get("n_responses", 0))))
            except KeyError as exc:
                raise ValueError(
                    f"{path}:{lineno}: alarm record missing {exc}") from exc
    return records
