"""Structured alarm logging for administrators.

"In event of an alarm, JURY extracts information about the offending
controller, trigger and the associated response, and presents it to the
administrator for further action" (§V). :class:`AlarmLog` subscribes to a
validator and renders that presentation: an in-memory ring of structured
records, JSON-lines export for tooling, and a human-readable tail.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import IO, Deque, Dict, List, Optional

from repro.core.alarms import Alarm
from repro.core.validator import Validator


@dataclass
class AlarmRecord:
    """One alarm, flattened for export."""

    time_ms: float
    reason: str
    offending_controller: Optional[str]
    trigger_id: str
    detail: str
    n_responses: int

    def to_dict(self) -> Dict:
        return {
            "time_ms": round(self.time_ms, 3),
            "reason": self.reason,
            "offending_controller": self.offending_controller,
            "trigger_id": self.trigger_id,
            "detail": self.detail,
            "n_responses": self.n_responses,
        }


class AlarmLog:
    """Collects validator alarms into exportable records."""

    def __init__(self, validator: Validator, capacity: int = 10_000,
                 stream: Optional[IO[str]] = None):
        self.records: Deque[AlarmRecord] = deque(maxlen=capacity)
        self.stream = stream
        self.total = 0
        self._previous_hook = validator.on_alarm
        validator.on_alarm = self._on_alarm

    def _on_alarm(self, alarm: Alarm) -> None:
        record = AlarmRecord(
            time_ms=alarm.raised_at,
            reason=alarm.reason.value,
            offending_controller=alarm.offending_controller,
            trigger_id=repr(alarm.trigger_id),
            detail=alarm.detail,
            n_responses=len(alarm.responses),
        )
        self.records.append(record)
        self.total += 1
        if self.stream is not None:
            self.stream.write(json.dumps(record.to_dict()) + "\n")
        if self._previous_hook is not None:
            self._previous_hook(alarm)

    # ------------------------------------------------------------------
    def by_controller(self) -> Dict[str, int]:
        """Alarm counts per blamed controller."""
        counts: Dict[str, int] = {}
        for record in self.records:
            key = record.offending_controller or "<unknown>"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def by_reason(self) -> Dict[str, int]:
        """Alarm counts per detection mechanism."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def to_jsonl(self) -> str:
        """All retained records as JSON lines."""
        return "\n".join(json.dumps(r.to_dict()) for r in self.records)

    def tail(self, count: int = 10) -> List[str]:
        """The most recent alarms, human-readable."""
        recent = list(self.records)[-count:]
        return [f"[{r.time_ms:9.1f} ms] {r.reason:<20} "
                f"controller={r.offending_controller or '?':<4} {r.detail}"
                for r in recent]
