"""JURY deployment: wires replicators, modules, and the validator to a cluster.

Usage::

    cluster, store = build_onos_cluster(sim, n=7)
    cluster.connect_topology(topology)
    jury = Jury.build(JuryConfig(k=6, timeout_ms=129.0), cluster=cluster)
    cluster.start()
    ...
    jury.detection_times()

The deployment owns the byte counters for JURY's network overhead accounting
(§VII-B.2): replicated triggers and validator traffic, kept separate from
the store's inter-controller counter.

Construction is config-driven: one :class:`~repro.config.JuryConfig`
describes the validation core plus observability, and
:meth:`repro.api.Jury.build` is the public entry point. Direct
``JuryDeployment(cluster, k=..., ...)`` keyword construction was removed
(PR 7) — passing kwargs without ``config=`` raises immediately with the
replacement spelled out.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import JuryConfig
from repro.controllers.cluster import ControllerCluster
from repro.controllers.northbound import NorthboundApi
from repro.core.module import JuryModule
from repro.core.pipeline import ValidationPipeline
from repro.core.replicator import Replicator
from repro.core.timeouts import TimeoutPolicy
from repro.core.validator import Validator
from repro.errors import ValidationError
from repro.net.channel import ByteCounter, ControlChannel
from repro.obs.trace import active_tracer
from repro.sim.latency import LatencyModel, Uniform


class JuryDeployment:
    """Everything JURY adds to an HA cluster."""

    def __init__(
        self,
        cluster: ControllerCluster,
        k: Optional[int] = None,
        timeout_ms: float = 150.0,
        timeout: Optional[TimeoutPolicy] = None,
        policy_engine=None,
        validator_latency: Optional[LatencyModel] = None,
        replicate_handshakes: bool = True,
        state_aware: bool = True,
        taint_classification: bool = True,
        pipeline: Optional[int] = None,
        config: Optional[JuryConfig] = None,
    ):
        if config is None:
            raise ValidationError(
                "JuryDeployment(cluster, k=..., ...) keyword construction "
                "was removed; build a JuryConfig and call "
                "Jury.build(config, cluster=cluster)")
        k = config.k
        if k is None:
            raise ValidationError(
                "JuryDeployment needs a k (config.k=None means a vanilla "
                "cluster and is only valid for Jury.experiment)")
        if k < 0 or k > cluster.size - 1:
            raise ValidationError(
                f"k={k} is not in [0, n-1] for a cluster of {cluster.size}")
        if not cluster.proxies:
            raise ValidationError(
                "connect_topology() before deploying JURY — the replicators "
                "attach to the per-switch OVS proxies")
        self.config = config
        self.cluster = cluster
        self.sim = cluster.sim
        self.k = k
        self.replicate_handshakes = config.replicate_handshakes
        self.rng = self.sim.fork_rng("jury-deployment")
        self.controller_ids: List[str] = cluster.controller_ids()
        self.replication_counter = ByteCounter("jury-replication")
        self.validator_counter = ByteCounter("jury-validator")
        #: Observability, shared by replicators and the validation engine.
        #: ``None`` (config.trace/metrics off) is the zero-cost path.
        self.tracer = active_tracer(config.build_tracer())
        self.metrics = config.build_metrics()
        self.forensics = config.build_forensics()
        self.health = config.build_health()
        self.sampler = config.build_sampler()
        self.recorder = config.build_flight_recorder()
        self.slo = None
        if self.health is not None:
            from repro.obs.health import SloMonitor
            self.slo = SloMonitor()
        self.snapshot_sink = None
        if config.snapshot_interval_ms is not None:
            from repro.obs.export import SnapshotSink
            self.snapshot_sink = SnapshotSink(
                config.snapshot_interval_ms,
                registry=self.metrics, health=self.health)

        timeout_policy = config.build_timeout()
        engine = config.build_policy_engine()
        #: Crash recovery: the deployment keeps the newest automatic
        #: snapshot (config.checkpoint_every) in ``last_checkpoint``;
        #: reassign ``validator.on_checkpoint`` to divert them elsewhere.
        self.last_checkpoint = None
        on_checkpoint = (self._keep_checkpoint
                         if config.checkpoint_every is not None else None)
        if config.pipeline is not None:
            # Sharded validator; same public surface, so modules/harness
            # code is oblivious to the swap.
            self.validator = ValidationPipeline(
                self.sim, k, shards=config.pipeline,
                timeout=timeout_policy,
                policy_engine=engine,
                mastership_lookup=cluster.master_of,
                state_aware=config.state_aware,
                taint_classification=config.taint_classification,
                keep_results=config.keep_results,
                queue_capacity=config.queue_capacity,
                batch_max=config.batch_max,
                flush_interval_ms=config.flush_interval_ms,
                tracer=self.tracer, metrics=self.metrics,
                forensics=self.forensics, health=self.health,
                snapshot_sink=self.snapshot_sink,
                sampler=self.sampler, recorder=self.recorder,
                profile=config.wall_profile,
                backend=config.backend,
                checkpoint_every=config.checkpoint_every,
                on_checkpoint=on_checkpoint)
        else:
            self.validator = Validator(
                self.sim, k,
                timeout=timeout_policy,
                policy_engine=engine,
                mastership_lookup=cluster.master_of,
                state_aware=config.state_aware,
                taint_classification=config.taint_classification,
                keep_results=config.keep_results,
                tracer=self.tracer, metrics=self.metrics,
                forensics=self.forensics, health=self.health,
                sampler=self.sampler, recorder=self.recorder,
                checkpoint_every=config.checkpoint_every,
                on_checkpoint=on_checkpoint)

        latency = (config.validator_latency
                   if config.validator_latency is not None
                   else Uniform(0.2, 0.8))
        self.modules: Dict[str, JuryModule] = {}
        for controller in cluster.controllers.values():
            module = JuryModule(self, controller)
            module.validator_channel = ControlChannel(
                self.sim, module, self.validator, latency=latency,
                name=f"validator-{controller.id}",
                counter=self.validator_counter)
            self.modules[controller.id] = module

        self.replicators: Dict[int, Replicator] = {
            dpid: Replicator(self, proxy)
            for dpid, proxy in cluster.proxies.items()
        }

    # ------------------------------------------------------------------
    def _keep_checkpoint(self, checkpoint) -> None:
        self.last_checkpoint = checkpoint

    # ------------------------------------------------------------------
    def attach_new_proxies(self) -> int:
        """Attach replicators to proxies wired after deployment.

        Returns how many new replicators were created. Used when a switch
        connects at runtime (e.g. the database-locking fault scenario).
        """
        added = 0
        for dpid, proxy in self.cluster.proxies.items():
            if dpid not in self.replicators:
                self.replicators[dpid] = Replicator(self, proxy)
                added += 1
        return added

    def attach_northbound(self, api: NorthboundApi) -> None:
        """Splice REST-trigger interception into a northbound API."""
        original_deliver = api._direct_deliver
        interceptor = next(iter(self.replicators.values()), None)
        if interceptor is None:
            return

        def intercepting_deliver(controller_id, request):
            interceptor.intercept_rest(controller_id, request)
            original_deliver(controller_id, request)

        api.deliver = intercepting_deliver

    def close(self) -> None:
        """Release validator resources (backend worker processes/threads).

        A no-op for the sequential validator and the serial backend;
        results and alarms stay readable after closing.
        """
        close = getattr(self.validator, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # Validation facade (uniform across sequential/sharded engines)
    # ------------------------------------------------------------------
    def detection_times(self, external_only: bool = True) -> List[float]:
        """Per-trigger detection latencies (ms) from the validation engine."""
        return self.validator.detection_times(external_only=external_only)

    def false_positive_rate(self) -> float:
        """Alarmed fraction of decided triggers."""
        return self.validator.false_positive_rate()

    @property
    def alarms(self):
        return self.validator.alarms

    # ------------------------------------------------------------------
    # Observability exports
    # ------------------------------------------------------------------
    def trace_payload(self) -> Dict[str, object]:
        """The recorded trace as a JSON-able payload (requires trace=True)."""
        if self.tracer is None:
            raise ValidationError(
                "tracing is off — build with JuryConfig(trace=True)")
        return self.tracer.to_payload()

    def metrics_snapshot(self) -> Dict[str, object]:
        """Push metrics plus a fresh scrape of engine/deployment counters."""
        if self.metrics is None:
            raise ValidationError(
                "metrics are off — build with JuryConfig(metrics=True)")
        from repro.obs.metrics import collect_deployment
        collect_deployment(self.metrics, self)
        return self.metrics.snapshot()

    def diagnose_payload(self) -> Dict[str, object]:
        """All alarm explanations as a JSON-able diagnosis payload."""
        if self.forensics is None:
            raise ValidationError(
                "diagnosis is off — build with JuryConfig(diagnose=True)")
        from repro.obs.diagnose import export_explanations
        return export_explanations(self.forensics.explanations())

    def health_snapshot(self) -> Dict[str, object]:
        """Replica health reports plus SLO statuses at the current time."""
        if self.health is None:
            raise ValidationError(
                "health scoring is off — build with JuryConfig(health=True)")
        payload = self.health.snapshot(self.sim.now)
        if self.slo is not None and self.metrics is not None:
            from repro.obs.metrics import collect_deployment
            collect_deployment(self.metrics, self)
            statuses = self.slo.evaluate(self.metrics, self.sim.now)
            self._record_slo(statuses)
            payload["slo"] = [status.to_dict() for status in statuses]
        return payload

    def _record_slo(self, statuses) -> None:
        """Feed SLO evaluations to the flight recorder; dump on breach."""
        recorder = self.recorder
        if recorder is None:
            return
        now = self.sim.now
        breached = False
        for status in statuses:
            if not status.ok:
                breached = True
                recorder.record(now, "slo", ("slo", status.name),
                                verdict="breached",
                                detail=f"value={status.value:.6g} "
                                       f"threshold={status.threshold:.6g}")
        if breached:
            recorder.trigger("slo-breach", now)

    def flight_payload(self) -> Dict[str, object]:
        """Flight-recorder ring + dumps as a JSON-able payload."""
        if self.recorder is None:
            raise ValidationError(
                "flight recording is off — build with JuryConfig(flight=True)")
        return self.recorder.payload(now=self.sim.now, metrics=self.metrics)

    def prometheus_text(self) -> str:
        """Metrics/health/SLO state in the Prometheus text format."""
        if self.metrics is None and self.health is None:
            raise ValidationError(
                "nothing to export — build with JuryConfig(metrics=True) "
                "and/or JuryConfig(health=True)")
        from repro.obs.export import prometheus_text
        reports = None
        statuses = None
        if self.metrics is not None:
            from repro.obs.metrics import collect_deployment
            collect_deployment(self.metrics, self)
        if self.health is not None:
            reports = self.health.evaluate(self.sim.now)
            if self.slo is not None and self.metrics is not None:
                statuses = self.slo.evaluate(self.metrics, self.sim.now)
                self._record_slo(statuses)
        return prometheus_text(registry=self.metrics,
                               health_reports=reports,
                               slo_statuses=statuses)

    # ------------------------------------------------------------------
    # Aggregate stats for the evaluation harness
    # ------------------------------------------------------------------
    def total_shadow_triggers(self) -> int:
        """Shadow executions across all secondaries."""
        return sum(m.shadow_triggers for m in self.modules.values())

    def decapsulation_samples(self) -> List[float]:
        """All recorded decapsulation costs (ms) across modules (Fig 4i)."""
        samples: List[float] = []
        for module in self.modules.values():
            samples.extend(module.encap_stats.samples_ms)
        return samples

    def overhead_mbps(self, window_ms: float) -> Dict[str, float]:
        """JURY's network overheads over a window: replication + validator."""
        return {
            "replication": self.replication_counter.mbps(window_ms),
            "validator": self.validator_counter.mbps(window_ms),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"JuryDeployment(k={self.k}, n={self.cluster.size}, "
                f"decided={self.validator.triggers_decided})")
