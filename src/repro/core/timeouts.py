"""Validation timeout policies.

JURY "requires administrators to set the validation timeout" (§IV-C); the
paper derives it empirically as the 95th percentile of consensus time per
configuration and lists adaptive timeouts as future work (§VIII). Both are
implemented here: :class:`StaticTimeout` is the paper's deployed mechanism,
:class:`AdaptiveTimeout` the future-work extension that tracks recent
latency trends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Deque


class TimeoutPolicy(ABC):
    """Produces the per-trigger validation deadline (ms)."""

    @abstractmethod
    def current(self) -> float:
        """The timeout to arm for the next trigger."""

    def observe(self, detection_ms: float) -> None:
        """Feed back a completed validation's latency (no-op by default)."""


class StaticTimeout(TimeoutPolicy):
    """A fixed administrator-chosen timeout."""

    def __init__(self, timeout_ms: float):
        self.timeout_ms = float(timeout_ms)

    def current(self) -> float:
        return self.timeout_ms

    def __repr__(self) -> str:
        return f"StaticTimeout({self.timeout_ms} ms)"


class AdaptiveTimeout(TimeoutPolicy):
    """Timeout tracking the recent latency distribution (§VIII extension).

    The deadline is ``margin`` × the ``quantile`` of the last ``window``
    observed detection latencies, clamped to ``[floor_ms, ceiling_ms]``.
    Fewer false alarms in high-churn networks, at the cost of slower
    detection when latencies drift upward.
    """

    def __init__(self, initial_ms: float = 150.0, window: int = 200,
                 quantile: float = 0.95, margin: float = 1.3,
                 floor_ms: float = 10.0, ceiling_ms: float = 5000.0):
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1]: {quantile}")
        self.initial_ms = float(initial_ms)
        self.window: Deque[float] = deque(maxlen=window)
        self.quantile = quantile
        self.margin = margin
        self.floor_ms = floor_ms
        self.ceiling_ms = ceiling_ms

    def observe(self, detection_ms: float) -> None:
        self.window.append(detection_ms)

    def current(self) -> float:
        if len(self.window) < 10:
            return self.initial_ms
        ordered = sorted(self.window)
        index = min(len(ordered) - 1, int(self.quantile * len(ordered)))
        value = ordered[index] * self.margin
        return min(self.ceiling_ms, max(self.floor_ms, value))

    def __repr__(self) -> str:
        return (f"AdaptiveTimeout(q={self.quantile}, margin={self.margin}, "
                f"current={self.current():.1f} ms)")
