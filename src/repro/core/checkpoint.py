"""Crash-recovery checkpoints and the write-ahead log.

A long-lived validator deployment cannot afford to lose its in-flight
state: a crash drops every pending θτ deadline, the per-controller Ψid
view, and the alarm history, and replaying a production stream from frame
0 is exactly the unbounded cost JURY's out-of-band design avoids. This
module gives every engine flavour (sequential
:class:`~repro.core.validator.Validator`, sharded
:class:`~repro.core.pipeline.ValidationPipeline`, any execution backend)
a common recovery currency:

* :class:`Checkpoint` — a versioned, sha-256-stamped snapshot envelope.
  The body is a pickled state dict produced by the engine's
  ``checkpoint()`` method; the digest covers the body bytes, so a
  truncated or tampered snapshot fails loud at :meth:`Checkpoint.state`
  rather than silently diverging after restore. The JSON export
  (``format: "jury-checkpoint"``) is the on-disk/CI artifact shape.
* :class:`WriteAheadLog` — an append-only log of post-checkpoint inputs.
  Every ingested response is appended (and flushed) *before* it can
  influence a decision, and each checkpoint appends a marker carrying its
  digest. Recovery = load the newest checkpoint, then replay the WAL
  records *after* its marker: the marker's position in the log (not its
  timestamp) resolves same-instant ties, so a response that arrived in
  the same simulated instant as the checkpoint is replayed exactly once.
* :func:`restore_engine` / :func:`replay_wal` / :func:`run_with_recovery`
  — the recovery path itself, shared by the differential suite, the
  fuzz oracle's ``RECOVERY_DIVERGENCE`` invariant, and the soak harness.

Determinism contract: with ``flush_interval_ms=0`` (the byte-identical
regime of ``docs/pipeline.md``), ``restore(checkpoint) + WAL replay +
remaining input`` yields a canonical alarm stream byte-identical to the
uninterrupted run's. Adaptive timeout policies are re-seeded from the
timeout value captured at checkpoint time (frame backends already require
a static policy).

This module is dependency-light by design — engines are imported lazily
inside the restore helpers so ``validator.py`` and ``pipeline.py`` can
import the envelope types without a cycle.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.obs import trace as obs_trace

#: Envelope identity of the JSON export (mirrors ``jury-flight``).
CHECKPOINT_FORMAT = "jury-checkpoint"
CHECKPOINT_VERSION = 1

#: WAL record tags. ``ingest`` records are the replay inputs; ``decision``
#: records are a cheap cross-check trail (never replayed — decisions are
#: recomputed deterministically); ``checkpoint`` markers anchor recovery.
WAL_INGEST = "ingest"
WAL_DECISION = "decision"
WAL_CHECKPOINT = "checkpoint"

_LEN = struct.Struct("<I")


class Checkpoint:
    """A versioned, digest-stamped engine snapshot.

    ``meta`` is a JSON-safe dict describing the engine shape (kind, k,
    shards, timeout, simulated time, counters); ``body`` is the pickled
    state dict; ``sha256`` is the hex digest over the body bytes and is
    the identity the WAL markers and restore path key on.
    """

    __slots__ = ("meta", "body", "sha256")

    def __init__(self, meta: Dict[str, object], body: bytes, sha256: str):
        self.meta = meta
        self.body = body
        self.sha256 = sha256

    @classmethod
    def build(cls, meta: Dict[str, object],
              state: Dict[str, object]) -> "Checkpoint":
        body = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(dict(meta), body, hashlib.sha256(body).hexdigest())

    def state(self) -> Dict[str, object]:
        """Verify the digest and unpickle the state dict."""
        digest = hashlib.sha256(self.body).hexdigest()
        if digest != self.sha256:
            raise CheckpointError(
                f"checkpoint digest mismatch: body hashes to {digest[:12]}…, "
                f"envelope claims {self.sha256[:12]}…")
        return pickle.loads(self.body)

    # ------------------------------------------------------------------
    # JSON envelope (the on-disk / CI-artifact shape)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "sha256": self.sha256,
            "meta": dict(self.meta),
            "body": base64.b64encode(self.body).decode("ascii"),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Checkpoint":
        if not isinstance(payload, dict) \
                or payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"not a {CHECKPOINT_FORMAT} payload: "
                f"format={payload.get('format')!r}"
                if isinstance(payload, dict)
                else f"not a {CHECKPOINT_FORMAT} payload")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {payload.get('version')!r} "
                f"(this build reads version {CHECKPOINT_VERSION})")
        try:
            body = base64.b64decode(payload["body"], validate=True)
        except (KeyError, ValueError, TypeError) as exc:
            raise CheckpointError(f"unreadable checkpoint body: {exc}")
        checkpoint = cls(dict(payload.get("meta") or {}), body,
                         str(payload.get("sha256")))
        digest = hashlib.sha256(body).hexdigest()
        if digest != checkpoint.sha256:
            raise CheckpointError(
                f"checkpoint digest mismatch: body hashes to {digest[:12]}…, "
                f"envelope claims {checkpoint.sha256[:12]}…")
        return checkpoint

    def save(self, path: str) -> None:
        """Atomically write the JSON envelope (write temp + rename)."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot load checkpoint {path}: {exc}")
        return cls.from_json(payload)


class WriteAheadLog:
    """Append-only log of post-checkpoint inputs (and a decision trail).

    File-backed (``path=...``) for real crash recovery or in-memory
    (``path=None``) for the differential/fuzz rigs. File records are
    length-prefixed pickle frames, flushed per append — the page cache
    makes a flushed record durable across a process ``SIGKILL`` (the
    failure model of the soak harness; machine-crash durability would add
    an fsync here). The reader tolerates a truncated tail: a record cut
    mid-write by the crash is dropped, never mis-parsed.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._records: Optional[List[Tuple]] = None
        self._handle = None
        if path is None:
            self._records = []
        else:
            self._handle = open(path, "ab")

    # ------------------------------------------------------------------
    # Append side (the engine's ingest/decision/checkpoint hooks)
    # ------------------------------------------------------------------
    def append(self, record: Tuple) -> None:
        if self._records is not None:
            self._records.append(record)
            return
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.write(_LEN.pack(len(blob)))
        self._handle.write(blob)
        self._handle.flush()

    def append_ingest(self, time_ms: float, response) -> None:
        self.append((WAL_INGEST, time_ms, response))

    def append_decision(self, time_ms: float, trigger_id: Tuple,
                        alarm_count: int) -> None:
        self.append((WAL_DECISION, time_ms, trigger_id, alarm_count))

    def append_checkpoint(self, sha256: str) -> None:
        self.append((WAL_CHECKPOINT, sha256))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read side (recovery)
    # ------------------------------------------------------------------
    def records(self) -> List[Tuple]:
        if self._records is not None:
            return list(self._records)
        if self._handle is not None:
            self._handle.flush()
        return self.read(self.path)

    @staticmethod
    def read(path: str) -> List[Tuple]:
        """Read every complete record; a truncated tail is dropped."""
        records: List[Tuple] = []
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise CheckpointError(f"cannot read WAL {path}: {exc}")
        offset = 0
        total = len(data)
        while offset + _LEN.size <= total:
            (length,) = _LEN.unpack_from(data, offset)
            start = offset + _LEN.size
            if start + length > total:
                break  # crash mid-write: drop the torn tail record
            records.append(pickle.loads(data[start:start + length]))
            offset = start + length
        return records


def wal_tail(records: List[Tuple], sha256: str) -> List[Tuple]:
    """Records after the *last* checkpoint marker matching ``sha256``.

    Position in the log — not timestamps — is what separates replayed
    from already-checkpointed inputs, so same-instant arrivals around the
    checkpoint are replayed exactly once.
    """
    marker = None
    for index, record in enumerate(records):
        if record[0] == WAL_CHECKPOINT and record[1] == sha256:
            marker = index
    if marker is None:
        raise CheckpointError(
            f"WAL has no checkpoint marker for {sha256[:12]}… "
            f"({len(records)} records scanned)")
    return records[marker + 1:]


def wal_last_ingest_time(records: List[Tuple]) -> Optional[float]:
    """Timestamp of the newest ingest record, or None for an empty log."""
    last = None
    for record in records:
        if record[0] == WAL_INGEST:
            last = record[1] if last is None else max(last, record[1])
    return last


def replay_wal(engine, records: List[Tuple]) -> Tuple[int, float]:
    """Schedule a WAL tail's ingest records into a restored engine.

    Schedules only — the caller runs the simulator (typically after also
    scheduling the resumed live input, so same-instant FIFO order across
    the WAL/live boundary matches the uninterrupted run). Returns
    ``(scheduled_count, last_time)`` where ``last_time`` falls back to the
    engine's current simulated time for an ingest-free tail.
    """
    sim = engine.sim
    count = 0
    last = sim.now
    for record in records:
        if record[0] != WAL_INGEST:
            continue
        time_ms, response = record[1], record[2]
        sim.schedule_at(time_ms, engine.ingest, response)
        if time_ms > last:
            last = time_ms
        count += 1
    return count, last


# ----------------------------------------------------------------------
# Observability hooks (shared by every engine flavour)
# ----------------------------------------------------------------------
def observe_checkpoint(engine, checkpoint: Checkpoint) -> None:
    """Record a taken snapshot: ``engine:checkpoint`` span + counters.

    ``engine:*`` spans are excluded from the canonical trace encoding, so
    a checkpointing run stays trace-identical to a plain one.
    """
    now = engine.sim.now
    tracer = getattr(engine, "tracer", None)
    if tracer is not None:
        tracer.emit(now, ("engine", "checkpoint"), obs_trace.ENGINE_CHECKPOINT,
                    detail=checkpoint.sha256[:12],
                    triggers=checkpoint.meta.get("triggers_decided", 0),
                    body_bytes=len(checkpoint.body))
    metrics = getattr(engine, "metrics", None)
    if metrics is not None:
        metrics.counter("checkpoint_snapshots_total").inc()
        metrics.gauge("checkpoint_body_bytes").set(len(checkpoint.body))
    recorder = getattr(engine, "recorder", None)
    if recorder is not None:
        recorder.record(now, "checkpoint", ("engine", "checkpoint"),
                        verdict="taken", detail=checkpoint.sha256[:12],
                        body_bytes=len(checkpoint.body))


def observe_restore(engine, checkpoint: Checkpoint) -> None:
    """Record a restore: span + counter + a flight-recorder dump.

    Restores are rare, anomalous events by definition (something died),
    so the flight recorder's ring is dumped — the events preceding the
    crash are exactly what the post-mortem needs.
    """
    now = engine.sim.now
    tracer = getattr(engine, "tracer", None)
    if tracer is not None:
        tracer.emit(now, ("engine", "restore"), obs_trace.ENGINE_RESTORE,
                    detail=checkpoint.sha256[:12],
                    triggers=checkpoint.meta.get("triggers_decided", 0))
    metrics = getattr(engine, "metrics", None)
    if metrics is not None:
        metrics.counter("checkpoint_restores_total").inc()
    recorder = getattr(engine, "recorder", None)
    if recorder is not None:
        recorder.record(now, "restore", ("engine", "restore"),
                        verdict="restored", detail=checkpoint.sha256[:12],
                        triggers=checkpoint.meta.get("triggers_decided", 0))
        recorder.trigger("restore", now)


# ----------------------------------------------------------------------
# Restore helpers (engines imported lazily; see module docstring)
# ----------------------------------------------------------------------
def restore_engine(checkpoint: Checkpoint, backend: Optional[str] = None,
                   **overrides):
    """Build a fresh simulator + engine from a checkpoint and restore it.

    The engine shape (kind, k, shards, timeout, batching knobs) comes from
    the checkpoint's meta; ``backend`` and keyword overrides (observers,
    ``wal=``, ``checkpoint_every=`` …) layer on top. The new simulator is
    advanced to the checkpointed instant by ``restore()`` itself.
    """
    from repro.core.timeouts import StaticTimeout
    from repro.sim.simulator import Simulator

    meta = checkpoint.meta
    kind = meta.get("engine")
    sim = Simulator(seed=0)
    timeout = StaticTimeout(float(meta["timeout_ms"]))
    if kind == "validator":
        from repro.core.validator import Validator
        engine = Validator(
            sim, int(meta["k"]), timeout=timeout,
            keep_results=bool(meta.get("keep_results", True)),
            state_aware=bool(meta.get("state_aware", True)),
            taint_classification=bool(meta.get("taint_classification", True)),
            **overrides)
    elif kind == "pipeline":
        from repro.core.pipeline import ValidationPipeline
        engine = ValidationPipeline(
            sim, int(meta["k"]), shards=int(meta["shards"]), timeout=timeout,
            keep_results=bool(meta.get("keep_results", True)),
            state_aware=bool(meta.get("state_aware", True)),
            taint_classification=bool(meta.get("taint_classification", True)),
            queue_capacity=int(meta.get("queue_capacity", 1024)),
            batch_max=int(meta.get("batch_max", 512)),
            flush_interval_ms=float(meta.get("flush_interval_ms", 0.0)),
            backend=backend if backend is not None
            else str(meta.get("backend", "serial")),
            **overrides)
    else:
        raise CheckpointError(f"unknown engine kind in checkpoint: {kind!r}")
    engine.restore(checkpoint)
    return engine


def run_with_recovery(records, make_engine: Callable,
                      kill_index: int, checkpoint_every: int = 8,
                      settle_ms: float = 10_000.0):
    """Crash an engine mid-stream, recover a twin, finish the stream.

    Drives ``records`` (``RecordedResponse``-shaped: ``.time_ms`` /
    ``.response``) into a checkpointing engine built by
    ``make_engine(sim)``, abandons it after ingesting ``records[:kill_index]``
    (the in-memory analog of ``kill -9``: pending timers and parent state
    are simply dropped; only the WAL and the checkpoints survive), then
    builds a second engine, restores the newest checkpoint, replays the
    WAL tail plus ``records[kill_index:]``, settles, and returns the
    recovered engine. Its canonical alarm stream — checkpoint-carried
    alarms included — is directly comparable to an uninterrupted run's.
    """
    from repro.sim.simulator import Simulator

    kill_index = max(0, min(kill_index, len(records)))
    wal = WriteAheadLog()
    newest: Dict[str, Checkpoint] = {}

    sim1 = Simulator(seed=0)
    engine1 = make_engine(sim1)
    engine1.wal = wal
    engine1.checkpoint_every = checkpoint_every
    engine1.on_checkpoint = lambda cp: newest.__setitem__("cp", cp)
    # Baseline snapshot at t=0 so a kill inside the first interval still
    # has a restore point (production would checkpoint at deploy time).
    newest["cp"] = engine1.checkpoint()
    for record in records[:kill_index]:
        sim1.schedule_at(record.time_ms, engine1.ingest, record.response)
    if kill_index:
        sim1.run(until=records[kill_index - 1].time_ms)
    close = getattr(engine1, "close", None)
    if close is not None:
        close()  # reap backend workers; parent-side state is abandoned

    checkpoint = newest["cp"]
    sim2 = Simulator(seed=0)
    engine2 = make_engine(sim2)
    engine2.restore(checkpoint)
    _, last = replay_wal(engine2, wal_tail(wal.records(), checkpoint.sha256))
    for record in records[kill_index:]:
        sim2.schedule_at(record.time_ms, engine2.ingest, record.response)
        if record.time_ms > last:
            last = record.time_ms
    sim2.run(until=last + settle_ms)
    drain = getattr(engine2, "drain", None)
    if drain is not None:
        drain()
    return engine2
