"""Validation outcomes and alarms.

When a response deviates from consensus or violates a policy, JURY "extracts
information about the offending controller, trigger and the associated
response, and presents it to the administrator" (§V) — that is an
:class:`Alarm`. Every decided trigger, alarmed or not, yields a
:class:`ValidationResult` for the evaluation harness (detection-time CDFs,
false-positive rates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple


class AlarmReason(enum.Enum):
    """Why the validator flagged a trigger."""

    #: Primary response never arrived before the validation timeout while
    #: replicas externalized non-empty responses (response omission /
    #: timing fault — e.g. the ONOS database-locking fault).
    PRIMARY_OMISSION = "primary_omission"
    #: Primary's response disagrees with the majority of equivalent-state
    #: replicas (T1 incorrect response).
    CONSENSUS_MISMATCH = "consensus_mismatch"
    #: Network write inconsistent with the cache updates (T2).
    SANITY_MISMATCH = "sanity_mismatch"
    #: An administrator policy matched the action (T3).
    POLICY_VIOLATION = "policy_violation"
    #: A replica's state digest stopped advancing while the cluster moved
    #: on (out-of-sync node — the intro's operational-fault examples).
    #: Detected by the validator's per-controller state tracking, an
    #: extension beyond per-trigger consensus.
    STALE_REPLICA = "stale_replica"


@dataclass
class Alarm:
    """An administrator-facing alarm with precise action attribution."""

    trigger_id: Tuple
    reason: AlarmReason
    offending_controller: Optional[str]
    detail: str = ""
    raised_at: float = 0.0
    responses: Tuple = ()

    def __str__(self) -> str:
        who = self.offending_controller or "<unknown>"
        return (f"ALARM[{self.reason.value}] controller={who} "
                f"trigger={self.trigger_id} {self.detail}")


@dataclass
class ValidationResult:
    """Outcome of validating one trigger."""

    trigger_id: Tuple
    ok: bool
    external: bool
    decided_at: float
    n_responses: int
    #: Decision latency from the trigger's receipt at the primary (ms);
    #: falls back to first-response arrival when receipt time is unknown.
    detection_ms: float = 0.0
    #: Whether the decision fired on the timer rather than a full count.
    timed_out: bool = False
    alarms: List[Alarm] = field(default_factory=list)

    @property
    def alarmed(self) -> bool:
        return bool(self.alarms)


# ----------------------------------------------------------------------
# Deterministic alarm-stream merging
# ----------------------------------------------------------------------
# The sharded pipeline emits alarms from N independent shards; the merge
# order below — decision time first, then a total order on trigger ids —
# is the pipeline's published contract, and the differential suite asserts
# byte-equality of the canonical stream against the sequential validator.

def alarm_merge_key(alarm: Alarm) -> Tuple[float, str]:
    """Deterministic total order for merging per-shard alarm streams.

    Trigger ids mix heterogeneous tuples (``("ext", n)`` vs
    ``("int", origin, n)``), so ``repr`` provides the tiebreak total order,
    mirroring :func:`repro.core.responses.sort_canonicals`.
    """
    return (alarm.raised_at, repr(alarm.trigger_id))


def canonical_alarm_line(alarm: Alarm) -> str:
    """One-line canonical rendering of an alarm, stable across runs."""
    who = alarm.offending_controller or "<unknown>"
    responses = ";".join(repr(r) for r in alarm.responses)
    return (f"{alarm.raised_at:.9f}|{alarm.reason.value}|{who}|"
            f"{alarm.trigger_id!r}|{alarm.detail}|{responses}")


def canonical_alarm_stream(alarms: Iterable[Alarm]) -> bytes:
    """Byte-exact canonical encoding of an alarm sequence.

    Sorts by :func:`alarm_merge_key` (a stable sort, so alarms sharing
    ``(raised_at, trigger_id)`` keep their emission order — within one
    trigger the check battery runs in a fixed order) and joins the
    canonical lines. Two validators are *equivalent* on a workload iff
    their canonical streams compare equal.
    """
    ordered = sorted(alarms, key=alarm_merge_key)
    return "\n".join(canonical_alarm_line(a) for a in ordered).encode("utf-8")
