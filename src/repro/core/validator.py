"""The out-of-band validator — Algorithm 1.

For every trigger τ the validator collects responses into Vτ, counting them
in Nτ and arming a timer θτ on the first arrival. A decision fires when the
full external-response complement (``2k + 2``: one primary network write,
``k + 1`` cache updates, ``k`` replica results) has arrived or the timer
expires. Classification follows the algorithm exactly: a tainted response in
Vτ — or more than ``k + 2`` responses — marks the trigger *external*;
external triggers run CONSENSUS → SANITY_CHECK → POLICY_CHECK, internal ones
CONSENSUS → POLICY_CHECK. A failed check raises an alarm with precise action
attribution.

The validator also maintains the per-controller-id state Ψid of Algorithm 1:
a running count of cache updates per controller plus a copy of the latest,
relying on the TCP-ordered relay of updates for accuracy (§IV-C).

The decision logic is factored into :class:`DecisionCore` so that the
sequential :class:`Validator` and the shards of
:class:`~repro.core.pipeline.ValidationPipeline` run literally the same code
on a decided trigger — the differential-equivalence suite
(``tests/test_pipeline_differential.py``) rests on that sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.controllers.context import restore_trigger_ids, snapshot_trigger_ids
from repro.core.alarms import Alarm, AlarmReason, ValidationResult
from repro.core.checkpoint import Checkpoint, observe_checkpoint, observe_restore
from repro.core.consensus import ConsensusOutcome, evaluate_consensus, sanity_check
from repro.core.responses import Response
from repro.core.timeouts import StaticTimeout, TimeoutPolicy
from repro.errors import CheckpointError
from repro.obs import trace as obs_trace
from repro.obs.sampling import active_sampler
from repro.obs.trace import active_tracer
from repro.sim.simulator import Simulator


@dataclass
class ControllerState:
    """Ψid: succinct per-controller state at the validator."""

    cache_updates: int = 0
    last_entry: Tuple = ()
    #: Progress of this replica's view: sum of per-origin applied seqs from
    #: its latest response digest. Stalls when the node desynchronizes.
    digest_progress: int = 0
    last_stale_alarm_at: float = -1e18


def digest_progress(digest: Tuple) -> Optional[int]:
    """Total applied writes encoded in a (origin, seq) digest, if valid."""
    if not digest:
        return None
    try:
        return sum(seq for _, seq in digest)
    except (TypeError, ValueError):
        return None


# Backward-compatible private alias (pre-pipeline name).
_digest_progress = digest_progress


def classify_external(count: int, responses: Sequence[Response], k: int,
                      taint_classification: bool) -> bool:
    """Algorithm 1's external test: count overflow or a tainted response.

    Pure so backend worker processes (:mod:`repro.core.backends`) classify
    triggers with literally the same code as the in-process validators.
    """
    external = count > k + 2
    if taint_classification:
        external = external or any(r.tainted for r in responses)
    return external


def snapshot_controller_states(
        state: Dict[str, "ControllerState"]) -> Dict[str, Tuple]:
    """Picklable snapshot of a Ψid mapping (worker bootstrap / restore)."""
    return {cid: (entry.cache_updates, entry.last_entry,
                  entry.digest_progress, entry.last_stale_alarm_at)
            for cid, entry in state.items()}


def restore_controller_states(
        payload: Dict[str, Tuple]) -> Dict[str, "ControllerState"]:
    """Inverse of :func:`snapshot_controller_states`."""
    return {cid: ControllerState(cache_updates=fields[0],
                                 last_entry=fields[1],
                                 digest_progress=fields[2],
                                 last_stale_alarm_at=fields[3])
            for cid, fields in payload.items()}


@dataclass
class _TriggerRecord:
    """Vτ / Nτ / θτ for one in-flight trigger."""

    responses: List[Tuple[Tuple, Response]] = field(default_factory=list)
    count: int = 0
    first_at: float = 0.0
    #: Scheduled θτ event; annotated so it is a per-record dataclass field
    #: rather than a class attribute shared across records.
    timer: Optional[object] = None
    decided: bool = False


class DecisionCore:
    """Classification and the check battery shared by all validator flavours.

    Hosts exactly the per-trigger decision logic of Algorithm 1 —
    external/internal classification, CONSENSUS → SANITY_CHECK →
    POLICY_CHECK, and the staleness monitor — with no opinion about how
    responses were collected. :class:`Validator` collects them one at a
    time; a pipeline shard collects them in batches; both defer here so a
    decided trigger yields identical alarms either way.
    """

    sim: Simulator
    k: int
    policy_engine: object
    mastership_lookup: Optional[Callable[[int], Optional[str]]]
    state_aware: bool
    taint_classification: bool
    staleness_threshold: Optional[int]
    staleness_cooldown_ms: float
    state: Dict[str, ControllerState]

    def _init_core(self, sim: Simulator, k: int,
                   policy_engine=None,
                   mastership_lookup: Optional[Callable[[int], Optional[str]]] = None,
                   state_aware: bool = True,
                   taint_classification: bool = True,
                   state: Optional[Dict[str, ControllerState]] = None,
                   tracer=None, metrics=None,
                   forensics=None, health=None,
                   sampler=None, recorder=None) -> None:
        self.sim = sim
        self.k = k
        self.policy_engine = policy_engine
        self.mastership_lookup = mastership_lookup
        #: Observability (repro.obs). ``None`` is the no-op fast path: every
        #: instrumentation site guards with a single ``is not None`` branch,
        #: and no observer can alter a decision (read-only contract). The
        #: forensics and health observers (repro.obs.diagnose / .health)
        #: follow the same rules as the tracer and the metrics registry.
        self.tracer = active_tracer(tracer)
        self.metrics = metrics
        self.forensics = forensics
        self.health = health
        #: Head sampler (repro.obs.sampling). ``None`` records everything;
        #: otherwise observers see only the sampled triggers — a pure
        #: function of the trigger id, so every engine samples identically.
        #: Decisions and alarms never consult it, and alarmed decisions
        #: are always observed in full (see _observe_decision).
        self.sampler = active_sampler(sampler)
        # One-slot memo for _sampled (the trigger currently being decided).
        self._sampled_key: Optional[Tuple] = None
        self._sampled_value = True
        #: Flight recorder (repro.obs.recorder). Always on when present —
        #: one bounded append per decision — and never sampled: its whole
        #: point is holding the events leading up to an anomaly.
        self.recorder = recorder
        #: Ablation switches (DESIGN.md §5): snapshot-grouped consensus and
        #: taint-based external/internal classification.
        self.state_aware = state_aware
        self.taint_classification = taint_classification
        #: Staleness monitor (out-of-sync node detection): alarm when a
        #: responding replica's view lags the most advanced responder by
        #: more than this many writes. None disables the monitor.
        self.staleness_threshold = 200
        self.staleness_cooldown_ms = 1000.0
        self.state = state if state is not None else {}

    # ------------------------------------------------------------------
    # Classification and checks
    # ------------------------------------------------------------------
    def _classify_external(self, count: int,
                           responses: Sequence[Response]) -> bool:
        """Algorithm 1's external test: count overflow or a tainted response."""
        return classify_external(count, responses, self.k,
                                 self.taint_classification)

    def _sampled(self, tau: Tuple) -> bool:
        """Head-sampling decision for this trigger's telemetry.

        One-slot memo: the decision path asks three times per trigger
        (DECIDE span gate, check spans, decision observers), always for
        the trigger currently being decided.
        """
        sampler = self.sampler
        if sampler is None:
            return True
        if tau == self._sampled_key:
            return self._sampled_value
        value = sampler.sampled(tau)
        self._sampled_key = tau
        self._sampled_value = value
        return value

    def _run_checks(self, tau: Tuple, responses: List[Response],
                    external: bool) -> Tuple[ConsensusOutcome, List[Alarm]]:
        """CONSENSUS plus everything downstream of it, for one trigger."""
        outcome = evaluate_consensus(responses, self.k, external,
                                     state_aware=self.state_aware)
        return outcome, self._post_consensus_alarms(tau, responses, outcome,
                                                    external)

    def _post_consensus_alarms(self, tau: Tuple, responses: List[Response],
                               outcome: ConsensusOutcome,
                               external: bool) -> List[Alarm]:
        """Sanity, staleness, and policy checks after a consensus outcome.

        Both the sequential validator and the pipeline's unanimity fast
        path converge here, so the per-check spans emitted below describe
        every decided trigger identically regardless of engine — the
        trace-determinism contract of :mod:`repro.obs.trace` rests on it.
        """
        tracer = self.tracer
        metrics = self.metrics
        # Head sampling gates only the telemetry: the checks below run
        # identically for every trigger, and _observe_decision re-records
        # alarmed decisions in full regardless of the head decision.
        if (tracer is not None or metrics is not None) \
                and not self._sampled(tau):
            tracer = None
            metrics = None
        alarms: List[Alarm] = []
        if not outcome.ok:
            alarms.append(self._alarm(tau, outcome, responses))
        consensus_verdict = (obs_trace.VERDICT_OK if outcome.ok
                             else outcome.reason.value)
        if tracer is not None:
            tracer.emit(self.sim.now, tau, obs_trace.CHECK_CONSENSUS,
                        verdict=consensus_verdict,
                        detail=outcome.offending or "")
        if metrics is not None:
            metrics.counter("validator_checks_total", check="consensus",
                            verdict=consensus_verdict).inc()

        if outcome.ok:
            # Sanity runs for every decided trigger: empty cache and network
            # entries pass trivially, and internal T2 faults (cache write
            # whose FLOW_MOD was dropped) are caught here too.
            sane = sanity_check(outcome.primary_cache_entry,
                                outcome.primary_network_entry,
                                outcome.primary_id)
            if not sane.ok:
                alarms.append(self._alarm(tau, sane, responses))
            sanity_verdict = (obs_trace.VERDICT_OK if sane.ok
                              else sane.reason.value)
            if tracer is not None:
                tracer.emit(self.sim.now, tau, obs_trace.CHECK_SANITY,
                            verdict=sanity_verdict,
                            detail=sane.offending or "")
            if metrics is not None:
                metrics.counter("validator_checks_total", check="sanity",
                                verdict=sanity_verdict).inc()

        stale = self._staleness_alarms(tau, responses)
        alarms.extend(stale)
        if self.staleness_threshold is not None:
            stale_verdict = (obs_trace.VERDICT_OK if not stale
                             else f"stale:{len(stale)}")
            if tracer is not None:
                tracer.emit(self.sim.now, tau, obs_trace.CHECK_STALENESS,
                            verdict=stale_verdict,
                            detail=",".join(sorted(
                                a.offending_controller or "?"
                                for a in stale)))
            if metrics is not None:
                metrics.counter("validator_checks_total", check="staleness",
                                verdict=obs_trace.VERDICT_OK if not stale
                                else "stale").inc()

        if self.policy_engine is not None:
            violations = self.policy_engine.check_decision(
                outcome, external, mastership_lookup=self.mastership_lookup)
            for violation in violations:
                alarms.append(Alarm(
                    trigger_id=tau, reason=AlarmReason.POLICY_VIOLATION,
                    offending_controller=outcome.primary_id,
                    detail=str(violation), raised_at=self.sim.now))
            policy_verdict = (obs_trace.VERDICT_OK if not violations
                              else f"violations:{len(violations)}")
            if tracer is not None:
                tracer.emit(self.sim.now, tau, obs_trace.CHECK_POLICY,
                            verdict=policy_verdict,
                            detail=str(violations[0]) if violations else "")
            if metrics is not None:
                metrics.counter("validator_checks_total", check="policy",
                                verdict=obs_trace.VERDICT_OK if not violations
                                else "violation").inc()
        return alarms

    def _observe_decision(self, tau: Tuple, result: ValidationResult,
                          responses: Sequence[Response],
                          outcome: ConsensusOutcome,
                          external: bool) -> None:
        """Feed the decision to every enabled observer.

        Emits the alarm/accept spans and decision metrics, hands the
        evidence bundle (responses + consensus outcome) to the forensics
        observer, and records the decision event for health scoring. Called
        by every validator flavour immediately after a trigger's
        :class:`ValidationResult` is assembled; the DECIDE span itself is
        emitted earlier (before the checks) by :meth:`_trace_decide` so the
        per-trigger stage order matches causality.
        """
        recorder = self.recorder
        if recorder is not None:
            now = self.sim.now
            recorder.record(now, "decision", tau,
                            verdict="alarmed" if result.alarms else "ok",
                            external=external, timed_out=result.timed_out,
                            n=result.n_responses,
                            detection_ms=result.detection_ms)
            for alarm in result.alarms:
                recorder.record(now, "alarm", tau,
                                verdict=alarm.reason.value,
                                detail=alarm.offending_controller or "")
            if result.alarms:
                recorder.trigger("alarm", now)
        # Alarmed decisions are always observed in full — the severity
        # override of the head sampler (docs/observability.md §sampling).
        if not result.alarms and not self._sampled(tau):
            return
        tracer = self.tracer
        if tracer is not None:
            now = self.sim.now
            if result.alarms:
                for alarm in result.alarms:
                    tracer.emit(now, tau, obs_trace.ALARM,
                                verdict=alarm.reason.value,
                                detail=alarm.offending_controller or "")
            else:
                tracer.emit(now, tau, obs_trace.ACCEPT,
                            verdict=obs_trace.VERDICT_OK)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(
                "validator_decisions_total",
                outcome="alarmed" if result.alarms else "ok").inc()
            if result.timed_out:
                metrics.counter("validator_timeout_decisions_total").inc()
            metrics.histogram("validator_detection_ms").observe(
                result.detection_ms)
            metrics.histogram("validator_responses_per_trigger").observe(
                result.n_responses)
            for alarm in result.alarms:
                metrics.counter("validator_alarms_total",
                                reason=alarm.reason.value).inc()
        if self.forensics is not None:
            self.forensics.observe_decision(tau, responses, outcome,
                                            result, external)
        if self.health is not None:
            self.health.record_decision(self.sim.now, responses,
                                        result.alarms, result.timed_out)

    def _trace_decide(self, tau: Tuple, count: int, external: bool,
                      timed_out: bool) -> None:
        """DECIDE span: Vτ closed, checks about to run (tracer non-None)."""
        self.tracer.emit(self.sim.now, tau, obs_trace.DECIDE,
                         verdict="timeout" if timed_out else "full-count",
                         external=external, n_responses=count)

    def _staleness_alarms(self, tau: Tuple,
                          responses: List[Response]) -> List[Alarm]:
        """Flag responders whose view lags the cluster (out-of-sync nodes).

        Consensus deliberately excuses stale replicas per trigger (transient
        asynchrony, §IV-C); *persistent* lag is an operational fault the
        validator's per-controller state exposes. Rate-limited per node.
        """
        if self.staleness_threshold is None:
            return []
        responders = {r.controller_id for r in responses}
        # Sorted so alarm emission order is replica-count deterministic.
        progresses = {cid: self.state[cid].digest_progress
                      for cid in sorted(responders) if cid in self.state}
        if len(progresses) < 2:
            return []
        frontier = max(progresses.values())
        if frontier - min(progresses.values()) <= self.staleness_threshold:
            return []  # nobody exceeds the lag bound; skip the per-node scan
        alarms: List[Alarm] = []
        for cid, progress in progresses.items():
            if frontier - progress <= self.staleness_threshold:
                continue
            state = self.state[cid]
            if self.sim.now - state.last_stale_alarm_at < self.staleness_cooldown_ms:
                continue
            state.last_stale_alarm_at = self.sim.now
            alarms.append(Alarm(
                trigger_id=tau, reason=AlarmReason.STALE_REPLICA,
                offending_controller=cid, raised_at=self.sim.now,
                detail=f"replica view lags the cluster by "
                       f"{frontier - progress} writes"))
        return alarms

    def _alarm(self, tau: Tuple, outcome: ConsensusOutcome,
               responses: List[Response]) -> Alarm:
        return Alarm(
            trigger_id=tau, reason=outcome.reason,
            offending_controller=outcome.offending,
            detail=outcome.detail, raised_at=self.sim.now,
            responses=tuple(responses))


class Validator(DecisionCore):
    """Out-of-band response validator (sequential, one response at a time)."""

    def __init__(self, sim: Simulator, k: int,
                 timeout: Optional[TimeoutPolicy] = None,
                 policy_engine=None,
                 mastership_lookup: Optional[Callable[[int], Optional[str]]] = None,
                 keep_results: bool = True,
                 state_aware: bool = True,
                 taint_classification: bool = True,
                 tracer=None, metrics=None,
                 forensics=None, health=None,
                 sampler=None, recorder=None,
                 checkpoint_every: Optional[int] = None,
                 on_checkpoint: Optional[Callable] = None,
                 wal=None):
        self._init_core(sim, k, policy_engine=policy_engine,
                        mastership_lookup=mastership_lookup,
                        state_aware=state_aware,
                        taint_classification=taint_classification,
                        tracer=tracer, metrics=metrics,
                        forensics=forensics, health=health,
                        sampler=sampler, recorder=recorder)
        self.timeout = timeout if timeout is not None else StaticTimeout(150.0)
        self.keep_results = keep_results
        self._pending: Dict[Tuple, _TriggerRecord] = {}
        # Triggers already decided: late responses (e.g. a promise-held
        # FLOW_MOD emerging after the timer) must be dropped, not allowed to
        # open a fresh record that would be judged alone and alarm
        # spuriously. Pruned in _decide to bound memory.
        self._recently_decided: Dict[Tuple, float] = {}
        self.results: List[ValidationResult] = []
        self.alarms: List[Alarm] = []
        self.on_alarm: Optional[Callable[[Alarm], None]] = None
        # Counters.
        self.responses_received = 0
        self.triggers_decided = 0
        self.triggers_alarmed = 0
        self.late_responses = 0
        #: Crash recovery (repro.core.checkpoint): optional write-ahead log
        #: of ingested responses, and an automatic snapshot every
        #: ``checkpoint_every`` decided triggers handed to ``on_checkpoint``.
        self.wal = wal
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self._since_checkpoint = 0
        self._checkpoint_scheduled = False

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def handle_control_message(self, channel, response: Response) -> None:
        """Channel endpoint for controller modules."""
        self.ingest(response)

    def ingest(self, response: Response) -> None:
        """Process one incoming (id, τ, entry) response."""
        if self.wal is not None:
            # Logged before it can influence any decision: recovery replays
            # exactly the inputs this run saw, in arrival order.
            self.wal.append_ingest(self.sim.now, response)
        self.responses_received += 1
        tau = response.trigger_id
        sampler = self.sampler
        sampled = sampler is None or sampler.sampled(tau)
        tracer = self.tracer
        if tracer is not None and sampled:
            tracer.emit(self.sim.now, tau, obs_trace.INGEST,
                        kind=response.kind.value,
                        controller=response.controller_id)
        if self.metrics is not None and sampled:
            self.metrics.counter("validator_responses_total",
                                 kind=response.kind.value).inc()
        if self.health is not None and sampled:
            received = response.trigger_received_at
            self.health.record_response(
                self.sim.now, response.controller_id,
                lag_ms=None if received is None
                else max(0.0, self.sim.now - received))
        if tau in self._recently_decided:
            self.late_responses += 1
            if tracer is not None and sampled:
                tracer.emit(self.sim.now, tau, obs_trace.LATE_DROP,
                            controller=response.controller_id)
            if self.metrics is not None and sampled:
                self.metrics.counter("validator_late_responses_total").inc()
            return
        record = self._pending.get(tau)
        if record is None:
            record = _TriggerRecord(first_at=self.sim.now)
            record.timer = self.sim.schedule(
                self.timeout.current(), self._on_timer, tau)
            self._pending[tau] = record
        if record.decided:
            return  # late response after decision (counts as slow replica)
        record.count += 1
        snapshot = self._snapshot(response.controller_id)
        record.responses.append((snapshot, response))
        if response.is_cache:
            state = self.state.setdefault(response.controller_id, ControllerState())
            state.cache_updates += 1
            state.last_entry = response.entry
        progress = digest_progress(response.state_digest)
        if progress is not None:
            state = self.state.setdefault(response.controller_id, ControllerState())
            state.digest_progress = max(state.digest_progress, progress)
        if record.count >= 2 * self.k + 2:
            self._decide(tau, record, timed_out=False)

    def _snapshot(self, controller_id: str) -> Tuple:
        state = self.state.get(controller_id)
        if state is None:
            return (0, ())
        return (state.cache_updates, state.last_entry)

    def _on_timer(self, tau: Tuple) -> None:
        record = self._pending.get(tau)
        if record is not None and not record.decided:
            self._decide(tau, record, timed_out=True)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _decide(self, tau: Tuple, record: _TriggerRecord, timed_out: bool) -> None:
        record.decided = True
        if record.timer is not None:
            record.timer.cancel()
        responses = [response for _, response in record.responses]
        external = self._classify_external(record.count, responses)
        if self.tracer is not None and self._sampled(tau):
            self._trace_decide(tau, record.count, external, timed_out)
        outcome, alarms = self._run_checks(tau, responses, external)

        received = [r.trigger_received_at for r in responses
                    if r.trigger_received_at is not None]
        baseline = min(received) if received else record.first_at
        detection_ms = max(0.0, self.sim.now - baseline)
        self.timeout.observe(detection_ms)

        result = ValidationResult(
            trigger_id=tau, ok=not alarms, external=external,
            decided_at=self.sim.now, n_responses=record.count,
            detection_ms=detection_ms, timed_out=timed_out, alarms=alarms)
        if (self.tracer is not None or self.metrics is not None
                or self.forensics is not None or self.health is not None
                or self.recorder is not None):
            self._observe_decision(tau, result, responses, outcome, external)
        self.triggers_decided += 1
        if alarms:
            self.triggers_alarmed += 1
            self.alarms.extend(alarms)
            if self.on_alarm is not None:
                for alarm in alarms:
                    self.on_alarm(alarm)
        if self.keep_results:
            self.results.append(result)
        del self._pending[tau]
        self._recently_decided[tau] = self.sim.now
        if len(self._recently_decided) > 20_000:
            horizon = self.sim.now - 20.0 * self.timeout.current()
            self._recently_decided = {
                t_id: decided for t_id, decided in self._recently_decided.items()
                if decided >= horizon}
        if self.wal is not None:
            self.wal.append_decision(self.sim.now, tau, len(alarms))
        if self.checkpoint_every is not None:
            self._since_checkpoint += 1
            if (self._since_checkpoint >= self.checkpoint_every
                    and not self._checkpoint_scheduled):
                # Delay-0 so the snapshot lands after every event of this
                # simulated instant, at a consistent boundary.
                self._checkpoint_scheduled = True
                self.sim.schedule(0.0, self._auto_checkpoint)

    # ------------------------------------------------------------------
    # Checkpoint / restore (repro.core.checkpoint, docs/recovery.md)
    # ------------------------------------------------------------------
    def _auto_checkpoint(self) -> None:
        self._checkpoint_scheduled = False
        self._since_checkpoint = 0
        checkpoint = self.checkpoint()
        if self.on_checkpoint is not None:
            self.on_checkpoint(checkpoint)

    def checkpoint(self) -> Checkpoint:
        """Full crash-recovery snapshot of this validator.

        Captures Ψid, every pending Vτ/Nτ record with its θτ deadline
        (read off the scheduled timer), the late-drop window, the alarm
        and result history, the counters, and the process-global
        trigger-id counter positions. Appends a marker to the attached
        WAL so recovery knows which log records the snapshot subsumes.
        """
        state = {
            "psi": snapshot_controller_states(self.state),
            "pending": {
                tau: (tuple(record.responses), record.count, record.first_at,
                      record.timer.time if record.timer is not None else None)
                for tau, record in self._pending.items()},
            "recently_decided": dict(self._recently_decided),
            "alarms": list(self.alarms),
            "results": list(self.results),
            "counters": (self.responses_received, self.triggers_decided,
                         self.triggers_alarmed, self.late_responses),
            "trigger_ids": snapshot_trigger_ids(),
            "staleness": (self.staleness_threshold,
                          self.staleness_cooldown_ms),
        }
        meta = {
            "engine": "validator", "k": self.k,
            "timeout_ms": self.timeout.current(), "sim_now": self.sim.now,
            "keep_results": self.keep_results,
            "state_aware": self.state_aware,
            "taint_classification": self.taint_classification,
            "triggers_decided": self.triggers_decided,
        }
        checkpoint = Checkpoint.build(meta, state)
        if self.wal is not None:
            self.wal.append_checkpoint(checkpoint.sha256)
        observe_checkpoint(self, checkpoint)
        return checkpoint

    def restore(self, checkpoint: Checkpoint) -> None:
        """Rehydrate a *fresh* validator from a :meth:`checkpoint`.

        Advances the simulator to the checkpointed instant, rebuilds Ψid
        and the pending records, re-arms every θτ timer at its original
        deadline, and re-seeds the trigger-id counters. After a WAL-tail
        replay the alarm stream continues byte-identically to the
        uninterrupted run's (``flush_interval_ms=0`` regime).
        """
        meta = checkpoint.meta
        if meta.get("engine") != "validator":
            raise CheckpointError(
                f"checkpoint is for engine {meta.get('engine')!r}, "
                f"not a sequential validator")
        if int(meta.get("k", -1)) != self.k:
            raise CheckpointError(
                f"checkpoint k={meta.get('k')!r} does not match "
                f"this validator's k={self.k}")
        if self.responses_received or self.triggers_decided or self._pending:
            raise CheckpointError(
                "restore target must be a fresh validator (this one has "
                "already processed responses)")
        state = checkpoint.state()
        sim_now = float(meta.get("sim_now", 0.0))
        if self.sim.now > sim_now:
            raise CheckpointError(
                f"simulator is at t={self.sim.now}ms, already past the "
                f"checkpoint instant t={sim_now}ms")
        if self.sim.now < sim_now:
            self.sim.run(until=sim_now)
        self.state.clear()
        self.state.update(restore_controller_states(state["psi"]))
        for tau, fields in state["pending"].items():
            record = _TriggerRecord(responses=list(fields[0]),
                                    count=fields[1], first_at=fields[2])
            deadline = fields[3]
            if deadline is not None:
                record.timer = self.sim.schedule_at(
                    deadline, self._on_timer, tau)
            self._pending[tau] = record
        self._recently_decided = dict(state["recently_decided"])
        self.alarms = list(state["alarms"])
        self.results = list(state["results"])
        (self.responses_received, self.triggers_decided,
         self.triggers_alarmed, self.late_responses) = state["counters"]
        restore_trigger_ids(state["trigger_ids"])
        self.staleness_threshold, self.staleness_cooldown_ms = \
            state["staleness"]
        observe_restore(self, checkpoint)

    # ------------------------------------------------------------------
    # Introspection for the harness
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Triggers awaiting more responses or their timer."""
        return len(self._pending)

    def detection_times(self, external_only: bool = True) -> List[float]:
        """Detection latencies of decided triggers (ms)."""
        return [r.detection_ms for r in self.results
                if (r.external or not external_only)]

    def false_positive_rate(self) -> float:
        """Alarmed fraction of decided triggers (meaningful on benign runs)."""
        if not self.triggers_decided:
            return 0.0
        return self.triggers_alarmed / self.triggers_decided
