"""JURY: consensus-based validation of clustered SDN controller actions.

The paper's system (§IV-§V) in three components, plus the deployment glue:

* :class:`~repro.core.replicator.Replicator` — intercepts external triggers
  (southbound PACKET_INs / FEATURES_REPLYs, northbound REST) at each
  switch's OVS proxy and replicates them, taint-tagged, to ``k`` randomly
  chosen secondary controllers.
* :class:`~repro.core.module.JuryModule` — the in-controller module on every
  replica: injects replicated triggers as *shadow* executions (side-effects
  captured and dropped), intercepts cache events and outgoing network
  messages, and relays responses to the validator.
* :class:`~repro.core.validator.Validator` — the out-of-band validator
  running Algorithm 1: per-trigger response collection under a timeout,
  state-aware consensus, network/cache sanity checking, and policy checks.
* :class:`~repro.core.deployment.JuryDeployment` — attaches all of the above
  to a :class:`~repro.controllers.cluster.ControllerCluster`.
"""

from repro.core.alarms import (
    Alarm,
    AlarmReason,
    ValidationResult,
    alarm_merge_key,
    canonical_alarm_line,
    canonical_alarm_stream,
)
from repro.core.consensus import ConsensusOutcome, evaluate_consensus, sanity_check
from repro.core.deployment import JuryDeployment
from repro.core.module import JuryModule
from repro.core.pipeline import (
    PipelineStats,
    ShardStats,
    ValidationPipeline,
    shard_of,
)
from repro.core.replicator import ReplicatedTrigger, Replicator
from repro.core.responses import Response, ResponseKind
from repro.core.selection import designated_secondaries
from repro.core.timeouts import AdaptiveTimeout, StaticTimeout, TimeoutPolicy
from repro.core.validator import DecisionCore, Validator

__all__ = [
    "AdaptiveTimeout",
    "Alarm",
    "AlarmReason",
    "ConsensusOutcome",
    "DecisionCore",
    "JuryDeployment",
    "JuryModule",
    "PipelineStats",
    "ReplicatedTrigger",
    "Replicator",
    "Response",
    "ResponseKind",
    "ShardStats",
    "StaticTimeout",
    "TimeoutPolicy",
    "ValidationPipeline",
    "ValidationResult",
    "Validator",
    "alarm_merge_key",
    "canonical_alarm_line",
    "canonical_alarm_stream",
    "designated_secondaries",
    "evaluate_consensus",
    "sanity_check",
    "shard_of",
]
