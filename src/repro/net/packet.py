"""A compact packet model.

Packets carry exactly the header fields OpenFlow 1.0 can match on
(:class:`repro.openflow.match.Match`), plus an opaque payload used for LLDP
probes and encapsulated control messages. Packets are immutable; "modifying"
a packet (e.g. re-encapsulation) creates a new one via ``dataclasses.replace``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional

ETH_BROADCAST = "ff:ff:ff:ff:ff:ff"


class EtherType(enum.IntEnum):
    """Ethernet frame types used in this reproduction."""

    IPV4 = 0x0800
    ARP = 0x0806
    LLDP = 0x88CC


class IpProto(enum.IntEnum):
    """IP protocol numbers used in this reproduction."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass(frozen=True)
class LldpPayload:
    """LLDP TLVs relevant to SDN topology discovery.

    Controllers stamp outgoing probes with the origin datapath and port (and
    their own controller id, which the ONOS master-election liveness
    algorithm reads).
    """

    src_dpid: int
    src_port: int
    controller_id: Optional[str] = None


@dataclass(frozen=True)
class Packet:
    """An Ethernet frame with optional IP/TCP headers.

    ``size`` is the wire size in bytes, used for the paper's network-overhead
    accounting (§VII-B.2). ``payload`` holds an :class:`LldpPayload`, an
    encapsulated control message, or arbitrary application data.
    """

    src_mac: str
    dst_mac: str
    eth_type: EtherType
    src_ip: Optional[str] = None
    dst_ip: Optional[str] = None
    ip_proto: Optional[IpProto] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    payload: Any = None
    size: int = 64
    flow_id: Optional[int] = field(default=None)

    @property
    def is_lldp(self) -> bool:
        return self.eth_type == EtherType.LLDP

    @property
    def is_arp(self) -> bool:
        return self.eth_type == EtherType.ARP

    @property
    def is_broadcast(self) -> bool:
        return self.dst_mac == ETH_BROADCAST

    def with_payload(self, payload: Any, size: Optional[int] = None) -> "Packet":
        """Return a copy carrying ``payload`` (and optionally a new size)."""
        return replace(self, payload=payload, size=self.size if size is None else size)

    def summary(self) -> str:
        """Short human-readable description for alarms and logs."""
        if self.is_lldp:
            return f"LLDP({self.payload})"
        if self.is_arp:
            return f"ARP({self.src_ip}->{self.dst_ip})"
        proto = self.ip_proto.name if self.ip_proto is not None else "?"
        return (
            f"{proto}({self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port})"
        )


def arp_request(src_mac: str, src_ip: str, dst_ip: str, flow_id: Optional[int] = None) -> Packet:
    """Broadcast ARP who-has ``dst_ip``."""
    return Packet(
        src_mac=src_mac,
        dst_mac=ETH_BROADCAST,
        eth_type=EtherType.ARP,
        src_ip=src_ip,
        dst_ip=dst_ip,
        size=60,
        flow_id=flow_id,
    )


def arp_reply(
    src_mac: str, src_ip: str, dst_mac: str, dst_ip: str, flow_id: Optional[int] = None
) -> Packet:
    """Unicast ARP reply."""
    return Packet(
        src_mac=src_mac,
        dst_mac=dst_mac,
        eth_type=EtherType.ARP,
        src_ip=src_ip,
        dst_ip=dst_ip,
        size=60,
        flow_id=flow_id,
    )


def tcp_packet(
    src_mac: str,
    dst_mac: str,
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    size: int = 74,
    flow_id: Optional[int] = None,
) -> Packet:
    """First packet (SYN) of a TCP connection — the unit tcpreplay drives."""
    return Packet(
        src_mac=src_mac,
        dst_mac=dst_mac,
        eth_type=EtherType.IPV4,
        src_ip=src_ip,
        dst_ip=dst_ip,
        ip_proto=IpProto.TCP,
        src_port=src_port,
        dst_port=dst_port,
        size=size,
        flow_id=flow_id,
    )


def lldp_probe(src_dpid: int, src_port: int, controller_id: Optional[str] = None) -> Packet:
    """LLDP probe emitted by a controller through a switch port."""
    return Packet(
        src_mac=f"lldp:{src_dpid:02x}",
        dst_mac="01:80:c2:00:00:0e",
        eth_type=EtherType.LLDP,
        payload=LldpPayload(src_dpid=src_dpid, src_port=src_port, controller_id=controller_id),
        size=68,
    )
