"""The programmable soft switch (OVS-alike) at the data plane.

Implements the OpenFlow 1.0 datapath behaviour the paper's faults hinge on:

* table-miss punting to the controller with packet buffering;
* FLOW_MOD installation with the OF 1.0 *silent field discard* on match
  prerequisite violations (the "ODL incorrect FLOW_MOD" root cause) —
  switchable to strict validation;
* PACKET_OUT handling with buffered-packet release;
* the HELLO/FEATURES handshake that precedes the controller's shared-cache
  switch write (the "ONOS database locking" fault site).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

from repro.net.channel import ControlChannel
from repro.net.links import Link
from repro.net.packet import Packet
from repro.openflow.actions import (
    Action,
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
)
from repro.openflow.constants import FlowModCommand
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    Hello,
    PacketIn,
    PacketOut,
)
from repro.sim.simulator import Simulator


class SoftSwitch:
    """A single-table OpenFlow switch.

    Parameters
    ----------
    sim: driving simulator.
    dpid: datapath id (unique within a topology).
    of10_silent_field_strip:
        When True (the OpenFlow 1.0 behaviour), FLOW_MODs whose match
        violates the field hierarchy are *silently* installed with the orphan
        fields stripped. When False, such FLOW_MODs are rejected and counted
        in ``rejected_flow_mods``.
    """

    def __init__(
        self,
        sim: Simulator,
        dpid: int,
        name: Optional[str] = None,
        of10_silent_field_strip: bool = True,
        max_flows: Optional[int] = None,
    ):
        self.sim = sim
        self.dpid = dpid
        self.name = name or f"s{dpid}"
        self.table = FlowTable(max_entries=max_flows)
        self.ports: Dict[int, Link] = {}
        self.control_channel: Optional[ControlChannel] = None
        self.of10_silent_field_strip = of10_silent_field_strip
        self._buffers: Dict[int, Tuple[Packet, int]] = {}
        self._buffer_ids = itertools.count(1)
        # Counters used throughout the evaluation harness.
        self.packet_ins_sent = 0
        self.flow_mods_received = 0
        self.rejected_flow_mods = 0
        self.stripped_flow_mods = 0
        self.packet_outs_received = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_port(self, port: int, link: Link) -> None:
        """Connect ``link`` at local port number ``port``."""
        self.ports[port] = link

    def connect_control(self, channel: ControlChannel) -> None:
        """Attach the control channel (to a controller or OVS proxy)."""
        self.control_channel = channel

    @property
    def port_numbers(self) -> Tuple[int, ...]:
        return tuple(sorted(self.ports))

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def receive_packet(self, packet: Packet, port: int) -> None:
        """Datapath ingress: match the table or punt to the controller."""
        entry = self.table.lookup(packet, in_port=port)
        if entry is None:
            self._punt_to_controller(packet, port)
            return
        entry.packets += 1
        entry.bytes += packet.size
        entry.last_hit = self.sim.now
        self._apply_actions(entry.actions, packet, in_port=port)

    def _punt_to_controller(self, packet: Packet, in_port: int) -> None:
        if self.control_channel is None:
            self.packets_dropped += 1
            return
        buffer_id = next(self._buffer_ids)
        self._buffers[buffer_id] = (packet, in_port)
        self.packet_ins_sent += 1
        message = PacketIn(dpid=self.dpid, in_port=in_port, packet=packet,
                           buffer_id=buffer_id)
        self.control_channel.send(self, message)

    def _apply_actions(self, actions: Tuple[Action, ...], packet: Packet,
                       in_port: Optional[int]) -> None:
        forwarded = False
        for action in actions:
            if isinstance(action, ActionOutput):
                link = self.ports.get(action.port)
                if link is not None and link.up:
                    link.transmit(self, packet)
                    forwarded = True
            elif isinstance(action, ActionFlood):
                for port, link in self.ports.items():
                    if port != in_port and link.up:
                        link.transmit(self, packet)
                        forwarded = True
            elif isinstance(action, ActionController):
                self._punt_to_controller(packet, in_port or 0)
            elif isinstance(action, ActionDrop):
                pass
        if forwarded:
            self.packets_forwarded += 1
        elif not actions or all(isinstance(a, ActionDrop) for a in actions):
            self.packets_dropped += 1

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def handle_control_message(self, channel: ControlChannel, message: Any) -> None:
        """Southbound message dispatch."""
        if isinstance(message, Hello):
            channel.send(self, Hello())
        elif isinstance(message, EchoRequest):
            channel.send(self, EchoReply(xid=message.xid))
        elif isinstance(message, FeaturesRequest):
            channel.send(self, FeaturesReply(
                xid=message.xid, dpid=self.dpid, ports=self.port_numbers))
        elif isinstance(message, BarrierRequest):
            channel.send(self, BarrierReply(xid=message.xid))
        elif isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, PacketOut):
            self._handle_packet_out(message)

    def _handle_flow_mod(self, message: FlowMod) -> None:
        self.flow_mods_received += 1
        if message.command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            strict = message.priority if message.command == FlowModCommand.DELETE_STRICT else None
            self.table.delete(message.match, strict_priority=strict)
            return
        match = message.match
        if match.hierarchy_violations():
            if self.of10_silent_field_strip:
                match = match.strip_unsupported_fields()
                self.stripped_flow_mods += 1
            else:
                self.rejected_flow_mods += 1
                return
        self.table.add(FlowEntry(
            match=match,
            actions=message.actions,
            priority=message.priority,
            cookie=message.cookie,
            idle_timeout=message.idle_timeout,
            installed_at=self.sim.now,
        ))

    def _handle_packet_out(self, message: PacketOut) -> None:
        self.packet_outs_received += 1
        packet, in_port = None, message.in_port
        if message.buffer_id is not None:
            buffered = self._buffers.pop(message.buffer_id, None)
            if buffered is not None:
                packet, in_port = buffered
        if packet is None:
            packet = message.packet
        if packet is None:
            return
        self._apply_actions(message.actions, packet, in_port=in_port)

    # ------------------------------------------------------------------
    # Introspection used by faults and validation
    # ------------------------------------------------------------------
    def installed_flow_canonicals(self) -> Tuple[Tuple, ...]:
        """Canonical (match, actions, priority) tuples of installed rules.

        ONOS compares these against its flow store to move rules from
        PENDING_ADD to ADDED; a mismatch strands them (Appendix fault 4).
        """
        from repro.openflow.actions import canonical_actions

        return tuple(
            (e.match.canonical(), canonical_actions(e.actions), e.priority)
            for e in self.table
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SoftSwitch(dpid={self.dpid}, flows={len(self.table)})"
