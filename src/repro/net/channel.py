"""Control-plane channels with TCP-like ordering and byte accounting.

The paper's replicator "sets up TCP channels to ensure reliable and in-order
delivery" (§IV-A), and the validator depends on in-order cache-update
delivery (§IV-C). :class:`ControlChannel` preserves per-direction FIFO order
even under jittered latency by never letting a later send overtake an earlier
one. :class:`ByteCounter` feeds the network-overhead results (§VII-B.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Protocol

from repro.sim.latency import Fixed, LatencyModel
from repro.sim.simulator import Simulator


class ByteCounter:
    """Accumulates bytes and converts to Mbps over a measurement window."""

    def __init__(self, name: str = ""):
        self.name = name
        self.bytes = 0
        self.messages = 0

    def add(self, nbytes: int) -> None:
        self.bytes += nbytes
        self.messages += 1

    def mbps(self, window_ms: float) -> float:
        """Average megabits per second over ``window_ms`` of simulated time."""
        if window_ms <= 0:
            return 0.0
        return self.bytes * 8.0 / (window_ms * 1000.0)

    def reset(self) -> None:
        self.bytes = 0
        self.messages = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ByteCounter({self.name!r}, bytes={self.bytes})"


class ChannelEndpoint(Protocol):
    """Anything that can terminate a control channel."""

    def handle_control_message(self, channel: "ControlChannel", message: Any) -> None:
        """Deliver one in-order message from the channel's other end."""


class ControlChannel:
    """A bidirectional, reliable, in-order message channel.

    Parameters
    ----------
    sim: driving simulator.
    a, b: the two endpoints.
    latency: one-way delay distribution.
    name: label used in byte-accounting reports.
    counter: optional shared :class:`ByteCounter` (e.g. "all inter-controller
        traffic"); a per-channel counter is always maintained as well.

    Every channel gets a :attr:`uid` — ``"<name>#<creation ordinal>"`` —
    that is stable for the lifetime of the channel and deterministic across
    runs with the same wiring order. Components that need to key state by
    channel use it instead of ``id(channel)``, whose value is a reusable
    process address that differs between replicas.
    """

    _uid_counter = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        a: ChannelEndpoint,
        b: ChannelEndpoint,
        latency: Optional[LatencyModel] = None,
        name: str = "chan",
        counter: Optional[ByteCounter] = None,
    ):
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency if latency is not None else Fixed(0.1)
        self.name = name
        self.uid = f"{name}#{next(ControlChannel._uid_counter)}"
        self.counter = ByteCounter(name)
        self.shared_counter = counter
        self.up = True
        self._rng = sim.fork_rng(f"chan/{name}")
        # Per-direction watermarks preserving FIFO under jittered latency.
        self._last_to_a = 0.0
        self._last_to_b = 0.0

    def other(self, endpoint: ChannelEndpoint) -> ChannelEndpoint:
        """The endpoint opposite ``endpoint``."""
        return self.b if endpoint is self.a else self.a

    def send(self, sender: ChannelEndpoint, message: Any) -> None:
        """Queue ``message`` for in-order delivery to the opposite end."""
        if not self.up:
            return
        receiver = self.other(sender)
        nbytes = message.wire_size() if hasattr(message, "wire_size") else 64
        self.counter.add(nbytes)
        if self.shared_counter is not None:
            self.shared_counter.add(nbytes)
        arrival = self.sim.now + self.latency.sample(self._rng)
        if receiver is self.a:
            arrival = max(arrival, self._last_to_a)
            self._last_to_a = arrival
        else:
            arrival = max(arrival, self._last_to_b)
            self._last_to_b = arrival
        self.sim.schedule_at(arrival, self._deliver, receiver, message)

    def _deliver(self, receiver: ChannelEndpoint, message: Any) -> None:
        if not self.up:
            return
        receiver.handle_control_message(self, message)

    def fail(self) -> None:
        """Sever the channel; in-flight and future messages are lost."""
        self.up = False

    def restore(self) -> None:
        """Bring the channel back up (previously lost messages stay lost)."""
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ControlChannel({self.name!r}, up={self.up})"
