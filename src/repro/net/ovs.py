"""The OVS replicating proxy on the control path.

The paper implements trigger replication "using programmable soft switches
(or OVSes)" configured as a transparent proxy (§VI-A): each hardware switch's
control channel terminates at an OVS on the server, which forwards traffic to
the primary controller normally and replicates it toward the secondaries.

:class:`ReplicatingProxy` is that OVS. It is deliberately policy-free: JURY's
:class:`~repro.core.replicator.Replicator` registers hooks to decide *what*
gets replicated, to *which* secondaries, and with what encapsulation. Without
hooks the proxy is an invisible bump in the wire, so vanilla (non-JURY)
clusters use the same wiring.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.net.channel import ControlChannel
from repro.net.switch import SoftSwitch
from repro.sim.simulator import Simulator

SwitchToControllerHook = Callable[[Any], None]
ControllerToSwitchHook = Callable[[str, Any], None]


def _is_handshake_reply(message: Any) -> bool:
    from repro.openflow.messages import BarrierReply, EchoReply, FeaturesReply, Hello

    return isinstance(message, (Hello, FeaturesReply, EchoReply, BarrierReply))


class ReplicatingProxy:
    """Transparent control-channel proxy with replication hooks.

    One proxy fronts one switch. ``switch_channel`` carries switch traffic;
    ``controller_channels`` maps controller id to that controller's channel.
    ``primary_id`` names the controller that normally governs the switch.
    """

    def __init__(self, sim: Simulator, switch: SoftSwitch, primary_id: str):
        self.sim = sim
        self.switch = switch
        self.primary_id = primary_id
        self.switch_channel: Optional[ControlChannel] = None
        self.controller_channels: Dict[str, ControlChannel] = {}
        # channel.uid -> controller id (stable identity; never id(channel)).
        self._channel_owner: Dict[str, str] = {}
        self.on_switch_to_controller: Optional[SwitchToControllerHook] = None
        self.on_controller_to_switch: Optional[ControllerToSwitchHook] = None
        # Counters for replication-overhead accounting.
        self.forwarded_to_primary = 0
        self.forwarded_to_switch = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect_switch(self, channel: ControlChannel) -> None:
        """Attach the channel whose far end is the switch."""
        self.switch_channel = channel

    def connect_controller(self, controller_id: str, channel: ControlChannel) -> None:
        """Attach a channel whose far end is controller ``controller_id``."""
        self.controller_channels[controller_id] = channel
        self._channel_owner[channel.uid] = controller_id

    def set_primary(self, controller_id: str) -> None:
        """Repoint the switch at a different primary (failover)."""
        self.primary_id = controller_id

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def handle_control_message(self, channel: ControlChannel, message: Any) -> None:
        """Bidirectional dispatch based on which channel delivered it."""
        if channel is self.switch_channel:
            self._from_switch(message)
        else:
            sender = self._channel_owner.get(channel.uid, "?")
            self._from_controller(sender, message)

    def _from_switch(self, message: Any) -> None:
        if _is_handshake_reply(message):
            # Handshake traffic reaches every connected controller — in the
            # real ANY_CONTROLLER_ONE_MASTER setup the switch holds a
            # connection to each of them.
            for channel in self.controller_channels.values():
                channel.send(self, message)
        else:
            primary = self.controller_channels.get(self.primary_id)
            if primary is not None:
                self.forwarded_to_primary += 1
                primary.send(self, message)
        if self.on_switch_to_controller is not None:
            self.on_switch_to_controller(message)

    def _from_controller(self, sender_id: str, message: Any) -> None:
        if self.on_controller_to_switch is not None:
            self.on_controller_to_switch(sender_id, message)
        if self.switch_channel is not None:
            self.forwarded_to_switch += 1
            self.switch_channel.send(self, message)

    # ------------------------------------------------------------------
    # Used by JURY's replicator
    # ------------------------------------------------------------------
    def send_to_controller(self, controller_id: str, message: Any) -> bool:
        """Send ``message`` up a specific controller channel.

        Returns ``False`` if that controller has no channel here.
        """
        channel = self.controller_channels.get(controller_id)
        if channel is None:
            return False
        channel.send(self, message)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplicatingProxy(switch={self.switch.name}, primary={self.primary_id})"
