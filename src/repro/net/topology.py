"""Topology builders: the paper's linear Mininet network and the physical
three-tier testbed.

A :class:`Topology` owns switches, hosts, and links, assigns port numbers,
and can export a :mod:`networkx` graph of the switch fabric (controllers use
an equivalent graph built from their *own* EdgesDB view — never this
ground truth — so tests can compare discovered vs. actual topology).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

import networkx as nx

from repro.errors import TopologyError
from repro.net.hosts import Host
from repro.net.links import Link
from repro.net.switch import SoftSwitch
from repro.sim.latency import Fixed, LatencyModel
from repro.sim.simulator import Simulator

Node = Union[SoftSwitch, Host]


class Topology:
    """A mutable network of switches, hosts, and links."""

    def __init__(self, sim: Simulator, link_latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.link_latency = link_latency if link_latency is not None else Fixed(0.05)
        self.switches: Dict[int, SoftSwitch] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self._next_port: Dict[int, itertools.count] = {}
        self._link_names = itertools.count(1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, dpid: Optional[int] = None, **kwargs) -> SoftSwitch:
        """Create and register a switch; dpids auto-assign if omitted."""
        if dpid is None:
            dpid = max(self.switches, default=0) + 1
        if dpid in self.switches:
            raise TopologyError(f"duplicate dpid {dpid}")
        switch = SoftSwitch(self.sim, dpid, **kwargs)
        self.switches[dpid] = switch
        self._next_port[dpid] = itertools.count(1)
        return switch

    def add_host(self, name: str, ip: Optional[str] = None,
                 mac: Optional[str] = None) -> Host:
        """Create and register a host with auto-derived MAC/IP if omitted."""
        if name in self.hosts:
            raise TopologyError(f"duplicate host {name}")
        index = len(self.hosts) + 1
        host = Host(
            self.sim,
            name,
            mac=mac or f"00:00:00:00:{index // 256:02x}:{index % 256:02x}",
            ip=ip or f"10.0.{index // 256}.{index % 256}",
        )
        self.hosts[name] = host
        return host

    def _alloc_port(self, switch: SoftSwitch) -> int:
        return next(self._next_port[switch.dpid])

    def add_link(self, a: Node, b: Node,
                 latency: Optional[LatencyModel] = None) -> Link:
        """Link two nodes, assigning the next free port on each switch end."""
        port_a = self._alloc_port(a) if isinstance(a, SoftSwitch) else 1
        port_b = self._alloc_port(b) if isinstance(b, SoftSwitch) else 1
        name = f"l{next(self._link_names)}"
        link = Link(self.sim, a, port_a, b, port_b,
                    latency=latency or self.link_latency, name=name)
        if isinstance(a, SoftSwitch):
            a.attach_port(port_a, link)
        else:
            a.attach(link)
        if isinstance(b, SoftSwitch):
            b.attach_port(port_b, link)
        else:
            b.attach(link)
        self.links.append(link)
        return link

    # ------------------------------------------------------------------
    # Queries and events
    # ------------------------------------------------------------------
    def switch_graph(self) -> nx.Graph:
        """Ground-truth graph of the switch fabric (up links only)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.switches)
        for link in self.links:
            if not link.up:
                continue
            if isinstance(link.node_a, SoftSwitch) and isinstance(link.node_b, SoftSwitch):
                graph.add_edge(link.node_a.dpid, link.node_b.dpid, link=link)
        return graph

    def host_location(self, host: Host) -> Tuple[int, int]:
        """Return ``(dpid, port)`` where ``host`` attaches."""
        if host.link is None:
            raise TopologyError(f"host {host.name} is not attached")
        link = host.link
        other = link.node_b if link.node_a is host else link.node_a
        if not isinstance(other, SoftSwitch):
            raise TopologyError(f"host {host.name} is not attached to a switch")
        return other.dpid, link.endpoint_for(other)

    def link_between(self, dpid_a: int, dpid_b: int) -> Optional[Link]:
        """The switch-to-switch link between two dpids, if one exists."""
        for link in self.links:
            ends = {getattr(link.node_a, "dpid", None), getattr(link.node_b, "dpid", None)}
            if ends == {dpid_a, dpid_b}:
                return link
        return None

    def fail_link(self, dpid_a: int, dpid_b: int) -> None:
        """Tear down the switch-to-switch link between two dpids."""
        link = self.link_between(dpid_a, dpid_b)
        if link is None:
            raise TopologyError(f"no link between s{dpid_a} and s{dpid_b}")
        link.fail()

    def restore_link(self, dpid_a: int, dpid_b: int) -> None:
        """Restore a previously failed link."""
        link = self.link_between(dpid_a, dpid_b)
        if link is None:
            raise TopologyError(f"no link between s{dpid_a} and s{dpid_b}")
        link.restore()

    def host_list(self) -> List[Host]:
        """Hosts in insertion order."""
        return list(self.hosts.values())


def linear_topology(sim: Simulator, n_switches: int = 24,
                    hosts_per_switch: int = 1,
                    link_latency: Optional[LatencyModel] = None) -> Topology:
    """The paper's Mininet workload network: a 24-switch linear chain with a
    host per switch (§VII, "24 Mininet switches and hosts, arranged in a
    linear topology")."""
    if n_switches < 1:
        raise TopologyError("need at least one switch")
    topo = Topology(sim, link_latency=link_latency)
    previous = None
    for i in range(1, n_switches + 1):
        switch = topo.add_switch(i)
        if previous is not None:
            topo.add_link(previous, switch)
        for h in range(hosts_per_switch):
            suffix = f"h{i}" if hosts_per_switch == 1 else f"h{i}_{h + 1}"
            host = topo.add_host(suffix)
            topo.add_link(switch, host)
        previous = switch
    return topo


def three_tier_topology(sim: Simulator, edge: int = 8, agg: int = 4, core: int = 2,
                        hosts_per_edge: int = 2,
                        link_latency: Optional[LatencyModel] = None) -> Topology:
    """The paper's physical testbed fabric: 8 edge, 4 aggregate, 2 core
    switches in a three-tiered design (§VII, experimental setup).

    Each edge switch uplinks to two aggregates; each aggregate uplinks to
    every core.
    """
    if edge < 1 or agg < 2 or core < 1:
        raise TopologyError("three-tier needs edge>=1, agg>=2, core>=1")
    topo = Topology(sim, link_latency=link_latency)
    core_switches = [topo.add_switch() for _ in range(core)]
    agg_switches = [topo.add_switch() for _ in range(agg)]
    edge_switches = [topo.add_switch() for _ in range(edge)]
    for agg_switch in agg_switches:
        for core_switch in core_switches:
            topo.add_link(agg_switch, core_switch)
    for i, edge_switch in enumerate(edge_switches):
        topo.add_link(edge_switch, agg_switches[i % agg])
        topo.add_link(edge_switch, agg_switches[(i + 1) % agg])
        for h in range(hosts_per_edge):
            host = topo.add_host(f"h{i + 1}_{h + 1}")
            topo.add_link(edge_switch, host)
    return topo
