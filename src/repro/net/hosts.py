"""End hosts: traffic sources and sinks."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.net.links import Link
from repro.net.packet import Packet, arp_reply, arp_request, tcp_packet
from repro.sim.simulator import Simulator

_flow_ids = itertools.count(1)


class Host:
    """A host with one NIC, an ARP responder, and simple traffic helpers.

    Hosts are the origin of the workload generators' traffic; delivery
    counters let tests assert end-to-end reachability after the controller
    installs rules.
    """

    def __init__(self, sim: Simulator, name: str, mac: str, ip: str):
        self.sim = sim
        self.name = name
        self.mac = mac
        self.ip = ip
        self.link: Optional[Link] = None
        self.received: List[Packet] = []
        self.received_by_flow: Dict[int, int] = {}
        self.sent = 0
        self._port_counter = itertools.count(10000)

    def attach(self, link: Link) -> None:
        """Connect this host's NIC to a link."""
        self.link = link

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit a raw packet out of the NIC."""
        if self.link is None:
            return
        self.sent += 1
        self.link.transmit(self, packet)

    def send_arp_request(self, dst_ip: str) -> int:
        """Broadcast an ARP who-has; returns the flow id for tracking."""
        flow_id = next(_flow_ids)
        self.send(arp_request(self.mac, self.ip, dst_ip, flow_id=flow_id))
        return flow_id

    def open_connection(self, dst: "Host", dst_port: int = 80) -> int:
        """Send the first packet of a fresh TCP connection to ``dst``.

        A unique ephemeral source port guarantees a flow-table miss under
        exact-match (src-dst 5-tuple) rules, which is how tcpreplay drives a
        controlled PACKET_IN rate (§VII-B.1).
        """
        flow_id = next(_flow_ids)
        packet = tcp_packet(
            self.mac,
            dst.mac,
            self.ip,
            dst.ip,
            src_port=next(self._port_counter),
            dst_port=dst_port,
            flow_id=flow_id,
        )
        self.send(packet)
        return flow_id

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive_packet(self, packet: Packet, port: int) -> None:
        """NIC receive path: answer ARP for our IP, count everything else."""
        if packet.is_arp and packet.dst_ip == self.ip and packet.dst_mac != self.mac:
            self.send(arp_reply(self.mac, self.ip, packet.src_mac, packet.src_ip,
                                flow_id=packet.flow_id))
            return
        self.received.append(packet)
        if packet.flow_id is not None:
            count = self.received_by_flow.get(packet.flow_id, 0)
            self.received_by_flow[packet.flow_id] = count + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, {self.ip})"
