"""Network substrate: packets, links, hosts, soft switches, and topologies.

This package plays the role of the paper's physical testbed and Mininet
network: programmable soft switches (OVS-alikes) with OpenFlow flow tables,
hosts that originate ARP/TCP traffic, latency-modeled links, and topology
builders for the linear Mininet network and the three-tier hardware testbed.
"""

from repro.net.channel import ByteCounter, ControlChannel
from repro.net.hosts import Host
from repro.net.links import Link
from repro.net.mininet import MininetBuilder, single_topology, tree_topology
from repro.net.ovs import ReplicatingProxy
from repro.net.packet import (
    ETH_BROADCAST,
    EtherType,
    IpProto,
    LldpPayload,
    Packet,
    arp_reply,
    arp_request,
    lldp_probe,
    tcp_packet,
)
from repro.net.switch import SoftSwitch
from repro.net.topology import Topology, linear_topology, three_tier_topology

__all__ = [
    "ByteCounter",
    "ControlChannel",
    "ETH_BROADCAST",
    "EtherType",
    "Host",
    "IpProto",
    "Link",
    "MininetBuilder",
    "LldpPayload",
    "Packet",
    "ReplicatingProxy",
    "SoftSwitch",
    "Topology",
    "arp_reply",
    "arp_request",
    "lldp_probe",
    "single_topology",
    "linear_topology",
    "tcp_packet",
    "three_tier_topology",
    "tree_topology",
]
