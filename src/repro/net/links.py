"""Data-plane links between switch ports and host ports."""

from __future__ import annotations

from typing import Optional, Protocol

from repro.net.channel import ByteCounter
from repro.net.packet import Packet
from repro.sim.latency import Fixed, LatencyModel
from repro.sim.simulator import Simulator


class PacketSink(Protocol):
    """Anything that terminates a data link (switch or host)."""

    def receive_packet(self, packet: Packet, port: int) -> None:
        """Deliver a packet arriving on local port ``port``."""


class Link:
    """A bidirectional point-to-point data link.

    Each endpoint is a ``(node, port)`` pair. Links can be failed and
    restored, which is how the workloads drive link tear-down events and how
    the synthetic link-failure fault manipulates the topology.
    """

    def __init__(
        self,
        sim: Simulator,
        node_a: PacketSink,
        port_a: int,
        node_b: PacketSink,
        port_b: int,
        latency: Optional[LatencyModel] = None,
        name: str = "link",
    ):
        self.sim = sim
        self.node_a = node_a
        self.port_a = port_a
        self.node_b = node_b
        self.port_b = port_b
        self.latency = latency if latency is not None else Fixed(0.05)
        self.name = name
        self.up = True
        self.counter = ByteCounter(name)
        self._rng = sim.fork_rng(f"link/{name}")

    def endpoint_for(self, node: PacketSink) -> int:
        """The local port number of ``node`` on this link."""
        return self.port_a if node is self.node_a else self.port_b

    def transmit(self, sender: PacketSink, packet: Packet) -> None:
        """Send ``packet`` from ``sender`` toward the opposite endpoint."""
        if not self.up:
            return
        if sender is self.node_a:
            dst, dst_port = self.node_b, self.port_b
        else:
            dst, dst_port = self.node_a, self.port_a
        self.counter.add(packet.size)
        delay = self.latency.sample(self._rng)
        self.sim.schedule(delay, self._deliver, dst, packet, dst_port)

    def _deliver(self, dst: PacketSink, packet: Packet, port: int) -> None:
        if not self.up:
            return
        dst.receive_packet(packet, port)

    def fail(self) -> None:
        """Take the link down; in-flight packets are lost."""
        self.up = False

    def restore(self) -> None:
        """Bring the link back up."""
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name!r}, up={self.up})"
