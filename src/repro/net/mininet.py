"""A Mininet-like fluent builder for custom topologies.

The paper drives its workloads from Mininet; this module gives examples and
tests a comparable declarative front-end::

    net = MininetBuilder(sim)
    s1, s2 = net.switch(), net.switch()
    h1, h2 = net.host(), net.host()
    net.link(s1, s2)
    net.link(h1, s1)
    net.link(h2, s2)
    topo = net.build()

plus canned builders mirroring Mininet's ``--topo`` presets (``single``,
``linear``, ``tree``).
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from repro.errors import TopologyError
from repro.net.hosts import Host
from repro.net.switch import SoftSwitch
from repro.net.topology import Topology
from repro.sim.latency import LatencyModel
from repro.sim.simulator import Simulator


class MininetBuilder:
    """Declarative topology construction with auto-named nodes."""

    def __init__(self, sim: Simulator,
                 link_latency: Optional[LatencyModel] = None):
        self._topology = Topology(sim, link_latency=link_latency)
        self._host_names = itertools.count(1)
        self._built = False

    def switch(self, dpid: Optional[int] = None, **kwargs) -> SoftSwitch:
        """Add a switch (auto-assigned dpid if omitted)."""
        self._check_open()
        return self._topology.add_switch(dpid, **kwargs)

    def host(self, name: Optional[str] = None, ip: Optional[str] = None) -> Host:
        """Add a host (auto-named ``h1``, ``h2``, ... if unnamed)."""
        self._check_open()
        if name is None:
            name = f"h{next(self._host_names)}"
        return self._topology.add_host(name, ip=ip)

    def link(self, a: Union[SoftSwitch, Host], b: Union[SoftSwitch, Host],
             latency: Optional[LatencyModel] = None):
        """Connect two nodes."""
        self._check_open()
        return self._topology.add_link(a, b, latency=latency)

    def build(self) -> Topology:
        """Finalize and return the topology (builder becomes read-only)."""
        self._validate()
        self._built = True
        return self._topology

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._built:
            raise TopologyError("builder already built; create a new one")

    def _validate(self) -> None:
        for host in self._topology.host_list():
            if host.link is None:
                raise TopologyError(f"host {host.name} has no link")


def single_topology(sim: Simulator, hosts: int = 2) -> Topology:
    """Mininet's ``--topo single,N``: one switch, N hosts."""
    if hosts < 1:
        raise TopologyError("need at least one host")
    net = MininetBuilder(sim)
    switch = net.switch()
    for _ in range(hosts):
        net.link(switch, net.host())
    return net.build()


def tree_topology(sim: Simulator, depth: int = 2, fanout: int = 2) -> Topology:
    """Mininet's ``--topo tree,depth,fanout``: a fanout-ary switch tree with
    hosts at the leaves."""
    if depth < 1 or fanout < 1:
        raise TopologyError("tree needs depth >= 1 and fanout >= 1")
    net = MininetBuilder(sim)

    def grow(level: int) -> SoftSwitch:
        node = net.switch()
        if level == depth:
            for _ in range(fanout):
                net.link(node, net.host())
        else:
            for _ in range(fanout):
                net.link(node, grow(level + 1))
        return node

    grow(1)
    return net.build()
