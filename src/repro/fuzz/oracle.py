"""Differential oracles: the invariants every fuzz scenario must satisfy.

One :class:`DifferentialOracle` run executes a scenario **live** (fresh
simulator, topology, controller cluster, JURY deployment), records the
validator's exact input stream, then replays that identical stream through
the sequential :class:`~repro.core.validator.Validator` and the sharded
:class:`~repro.core.pipeline.ValidationPipeline` at N ∈ {1, 2, 4, 8} —
optionally across execution backends (``backends=("serial", "threads",
"processes")``) so the scheduler itself is on the differential axis —
with observability on and off, checking the invariant catalog:

``CLEAN_RUN_ALARMED``
    A scenario with no fault schedule raised an alarm (a false positive —
    the paper's headline "no false alarms" claim).
``FAULT_UNDETECTED``
    An injected fault produced no matching alarm inside its settle window.
``DEADLINE_EXCEEDED``
    The fault was detected, but later than its θτ-derived deadline.
``PREMATURE_ALARM``
    An alarm fired before the first fault was even injected.
``REPLAY_DIVERGENCE``
    Replaying the recorded response stream through a fresh sequential
    validator did not reproduce the live alarm stream byte-for-byte.
``ENGINE_DIVERGENCE``
    The sharded pipeline's canonical alarm stream differs from the
    sequential validator's at some shard count / execution backend.
``RECOVERY_DIVERGENCE``
    Killing an engine mid-stream, restoring its newest checkpoint, and
    replaying the WAL tail plus the remaining records did not reproduce
    the uninterrupted replay's alarm stream byte-for-byte
    (:func:`repro.core.checkpoint.run_with_recovery`).
``COUNTER_MISMATCH``
    Engines agree on alarms but disagree on accounting (decided /
    received / late counts).
``TRACE_DIVERGENCE``
    The canonical trace encoding differs between engines.
``OBSERVER_IMPURITY``
    Attaching tracer + metrics changed the alarm stream.

Violations carry enough detail to triage without re-running; the
:class:`~repro.fuzz.shrink.Shrinker` uses the violation-code signature as
its interestingness predicate.

Engine/trace divergences additionally ship **artifacts** (PR 8): the
diverging pair is re-run traced, the canonical traces are aligned with
:func:`repro.obs.diff.diff_tracers`, and the violation detail names the
first-divergence point; ``report.artifacts`` carries the full trace diff
plus a flight-recorder dump of the diverging replay, so every surviving
counterexample is triageable offline (``jury-repro trace-diff``,
``jury-repro diagnose --flight``).

A ``perturb`` knob applies a deterministic timeout delta to exactly one
named ``(backend, shards)`` replay variant — a planted fire drill that
must produce exactly ``ENGINE_DIVERGENCE``, exercising the divergence →
diff → artifact path end to end (the committed
``tests/corpus/planted-engine-divergence.json`` entry).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fuzz.scenario import ScenarioSpec, build_fault_scenario

#: Shard counts every scenario is replayed at.
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
#: Shard counts additionally replayed with tracing + metrics attached.
DEFAULT_TRACED_SHARDS = (2, 4)
#: Execution backends in the differential matrix. ``("serial",)`` keeps
#: the default campaign cheap; the fuzz CLI's ``--backend`` widens it so
#: ``ENGINE_DIVERGENCE`` covers the threads/processes schedulers too.
DEFAULT_BACKENDS = ("serial",)


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with human-readable detail."""

    code: str
    detail: str

    def __str__(self) -> str:
        return f"{self.code}: {self.detail}"


@dataclass
class FaultOutcome:
    """Detection verdict for one scheduled fault."""

    name: str
    injected_at: float
    deadline_ms: float
    detected: bool
    detection_ms: Optional[float]


@dataclass
class LiveRun:
    """Everything recorded from one live execution of a scenario."""

    spec: ScenarioSpec
    records: list
    mastership: Dict[int, str]
    #: Canonical stream of the alarms raised *inside the recorded window*
    #: (post-warmup) — the only alarms a replay can reproduce.
    alarm_stream: bytes
    triggers_decided: int
    fault_outcomes: List[FaultOutcome] = field(default_factory=list)
    first_injection_at: Optional[float] = None
    alarms_before_injection: int = 0
    #: Alarms raised during warmup, before the recorder attached.
    warmup_alarms: int = 0
    #: Simulated time at which the live run stopped. Replays settle past
    #: the last record, so a trigger still in flight at the live cutoff
    #: decides in the replay but not live; live-vs-replay comparisons must
    #: therefore cap the replay stream at this instant.
    ended_at: float = 0.0


@dataclass
class OracleReport:
    """The verdict for one scenario."""

    spec: ScenarioSpec
    violations: List[InvariantViolation] = field(default_factory=list)
    triggers_decided: int = 0
    records: int = 0
    fault_outcomes: List[FaultOutcome] = field(default_factory=list)
    #: Stable digests for seed-stability assertions: the spec's canonical
    #: JSON, the live canonical alarm stream, and the canonical trace of
    #: the traced sequential replay (PR 3's encoding).
    spec_digest: str = ""
    alarm_digest: str = ""
    trace_digest: str = ""
    #: Divergence triage artifacts: ``trace_diff`` (the aligned canonical
    #: trace diff of the first diverging pair, JSON-able) and ``flight``
    #: (the diverging replay's flight-recorder payload). Empty when no
    #: engine/trace divergence occurred.
    artifacts: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def codes(self) -> Tuple[str, ...]:
        """Sorted, de-duplicated violation codes — the failure signature."""
        return tuple(sorted({v.code for v in self.violations}))

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "ok": self.ok,
            "violations": [{"code": v.code, "detail": v.detail}
                           for v in self.violations],
            "triggers_decided": self.triggers_decided,
            "records": self.records,
            "faults": [{"name": f.name, "detected": f.detected,
                        "detection_ms": f.detection_ms,
                        "deadline_ms": f.deadline_ms}
                       for f in self.fault_outcomes],
            "spec_digest": self.spec_digest,
            "alarm_digest": self.alarm_digest,
            "trace_digest": self.trace_digest,
            "artifacts": dict(self.artifacts),
        }


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class DifferentialOracle:
    """Runs scenarios live and differentially; reports broken invariants."""

    def __init__(self,
                 shard_counts: Tuple[int, ...] = DEFAULT_SHARD_COUNTS,
                 traced_shards: Tuple[int, ...] = DEFAULT_TRACED_SHARDS,
                 settle_ms: float = 10_000.0,
                 backends: Tuple[str, ...] = DEFAULT_BACKENDS,
                 perturb: Optional[Dict[str, object]] = None):
        self.shard_counts = shard_counts
        self.traced_shards = traced_shards
        self.settle_ms = settle_ms
        self.backends = backends
        #: Planted fire drill: ``{"backend": ..., "shards": ...,
        #: "timeout_delta_ms": ...}`` perturbs exactly one replay variant's
        #: static timeout, deterministically forcing ENGINE_DIVERGENCE.
        self.perturb = perturb

    # ------------------------------------------------------------------
    # Live execution + recording
    # ------------------------------------------------------------------
    def record(self, spec: ScenarioSpec) -> LiveRun:
        """Execute ``spec`` live and capture the validator input stream."""
        from repro.api import Jury
        from repro.config import JuryConfig
        from repro.controllers.context import reset_trigger_ids
        from repro.core.alarms import canonical_alarm_stream
        from repro.faults.base import run_scenario
        from repro.workloads.recorder import ValidatorStreamRecorder
        from repro.workloads.traffic import TrafficDriver

        reset_trigger_ids()
        experiment = Jury.experiment(JuryConfig(
            kind=spec.kind, n=spec.n, k=spec.k, switches=spec.switches,
            seed=spec.seed, timeout_ms=spec.timeout_ms,
            policies=("default",)))
        experiment.warmup()
        recorder = ValidatorStreamRecorder(experiment.jury)
        warmup_alarms = len(experiment.validator.alarms)

        if spec.traffic is not None:
            driver = TrafficDriver(
                experiment.sim, experiment.topology,
                packet_in_rate_per_s=spec.traffic.rate_per_s,
                duration_ms=spec.traffic.duration_ms,
                arp_fraction=spec.traffic.arp_fraction,
                host_join_rate_per_s=spec.traffic.host_join_rate_per_s,
                seed_label=f"fuzz-traffic/{spec.seed}")
            driver.start()
            experiment.run(spec.traffic.duration_ms
                           + spec.settle_timeouts * spec.timeout_ms)

        validator = experiment.validator
        outcomes: List[FaultOutcome] = []
        first_injection: Optional[float] = None
        alarms_before = 0
        for fault_spec in spec.faults:
            scenario = build_fault_scenario(fault_spec)
            injected_at = experiment.sim.now
            if first_injection is None:
                first_injection = injected_at
                alarms_before = len(validator.alarms) - warmup_alarms
            deadline = (fault_spec.deadline_ms
                        if fault_spec.deadline_ms is not None
                        else scenario.settle_ms(experiment))
            result = run_scenario(experiment, scenario)
            outcomes.append(FaultOutcome(
                name=fault_spec.name, injected_at=injected_at,
                deadline_ms=deadline, detected=result.detected,
                detection_ms=result.detection_ms))

        experiment.run(spec.settle_timeouts * spec.timeout_ms)
        mastership = {dpid: experiment.cluster.master_of(dpid)
                      for dpid in experiment.cluster.proxies}
        return LiveRun(
            spec=spec,
            records=recorder.records,
            mastership=mastership,
            alarm_stream=canonical_alarm_stream(
                validator.alarms[warmup_alarms:]),
            triggers_decided=validator.triggers_decided,
            fault_outcomes=outcomes,
            first_injection_at=first_injection,
            alarms_before_injection=alarms_before,
            warmup_alarms=warmup_alarms,
            ended_at=experiment.sim.now,
        )

    # ------------------------------------------------------------------
    # Replay engines
    # ------------------------------------------------------------------
    def _replay(self, live: LiveRun, shards: Optional[int] = None,
                tracer=None, metrics=None, backend: str = "serial",
                timeout_ms: Optional[float] = None, recorder=None):
        from repro.core.pipeline import ValidationPipeline
        from repro.core.timeouts import StaticTimeout
        from repro.core.validator import Validator
        from repro.faults.injector import default_policy_engine
        from repro.workloads.recorder import replay_validation_stream

        spec = live.spec
        lookup = live.mastership.get
        effective_timeout = (spec.timeout_ms if timeout_ms is None
                             else timeout_ms)

        def make(sim):
            kwargs = dict(timeout=StaticTimeout(effective_timeout),
                          policy_engine=default_policy_engine(),
                          mastership_lookup=lookup,
                          tracer=tracer, metrics=metrics,
                          recorder=recorder)
            if shards is None:
                return Validator(sim, spec.k, **kwargs)
            return ValidationPipeline(sim, spec.k, shards=shards,
                                      backend=backend, **kwargs)

        engine = replay_validation_stream(live.records, make,
                                          settle_ms=self.settle_ms)
        # Worker-hosting backends hold OS resources; alarms and counters
        # stay readable after close, so release them eagerly.
        close = getattr(engine, "close", None)
        if close is not None:
            close()
        return engine

    # ------------------------------------------------------------------
    # The oracle proper
    # ------------------------------------------------------------------
    def run(self, spec: ScenarioSpec) -> OracleReport:
        """Execute ``spec`` and check the full invariant catalog."""
        from repro.core.alarms import canonical_alarm_stream
        from repro.obs.trace import Tracer

        live = self.record(spec)
        report = OracleReport(spec=spec,
                              triggers_decided=live.triggers_decided,
                              records=len(live.records),
                              fault_outcomes=live.fault_outcomes,
                              spec_digest=spec.digest(),
                              alarm_digest=_sha256(live.alarm_stream))
        violations = report.violations

        # --- Live-run invariants -------------------------------------
        if not spec.faults and (live.alarm_stream or live.warmup_alarms):
            violations.append(InvariantViolation(
                "CLEAN_RUN_ALARMED",
                f"fault-free scenario raised alarms ({live.warmup_alarms} "
                f"during warmup; windowed stream sha256 "
                f"{report.alarm_digest[:12]})"))
        if spec.faults and live.alarms_before_injection:
            violations.append(InvariantViolation(
                "PREMATURE_ALARM",
                f"{live.alarms_before_injection} alarm(s) before the first "
                f"injection at t={live.first_injection_at:.1f} ms"))
        for outcome in live.fault_outcomes:
            if not outcome.detected:
                violations.append(InvariantViolation(
                    "FAULT_UNDETECTED",
                    f"{outcome.name} injected at "
                    f"t={outcome.injected_at:.1f} ms raised no matching "
                    f"alarm within {outcome.deadline_ms:.0f} ms"))
            elif (outcome.detection_ms is not None
                    and outcome.detection_ms > outcome.deadline_ms):
                violations.append(InvariantViolation(
                    "DEADLINE_EXCEEDED",
                    f"{outcome.name} detected after "
                    f"{outcome.detection_ms:.1f} ms "
                    f"(deadline {outcome.deadline_ms:.0f} ms)"))

        # --- Replay / engine-equivalence invariants ------------------
        sequential = self._replay(live)
        expected = canonical_alarm_stream(sequential.alarms)
        # The replay settles past the last record, so triggers still in
        # flight at the live cutoff decide (on their θτ timers) only in
        # the replay. Those tail decisions are correct replay behaviour,
        # not a divergence: compare live-vs-replay inside the live
        # window only. Engine-vs-engine comparisons below stay on the
        # full streams — every engine settles identically.
        expected_window = canonical_alarm_stream(
            [alarm for alarm in sequential.alarms
             if alarm.raised_at <= live.ended_at])
        if expected_window != live.alarm_stream:
            violations.append(InvariantViolation(
                "REPLAY_DIVERGENCE",
                "sequential replay did not reproduce the live alarm "
                f"stream ({_sha256(expected_window)[:12]} != "
                f"{report.alarm_digest[:12]})"))
        baseline_counters = self._counters(sequential)
        for backend in self.backends:
            for shards in self.shard_counts:
                timeout_ms = self._perturbed_timeout(spec, backend, shards)
                pipeline = self._replay(live, shards=shards, backend=backend,
                                        timeout_ms=timeout_ms)
                stream = canonical_alarm_stream(pipeline.alarms)
                label = f"pipeline N={shards} backend={backend}"
                if timeout_ms is not None:
                    label += f" (perturbed timeout {timeout_ms:.1f} ms)"
                if stream != expected:
                    detail = (f"{label} alarm stream diverged "
                              f"({_sha256(stream)[:12]} != "
                              f"{_sha256(expected)[:12]})")
                    if "trace_diff" not in report.artifacts:
                        detail += "; " + self._capture_divergence(
                            live, report, shards, backend, timeout_ms)
                    violations.append(InvariantViolation(
                        "ENGINE_DIVERGENCE", detail))
                elif self._counters(pipeline) != baseline_counters:
                    violations.append(InvariantViolation(
                        "COUNTER_MISMATCH",
                        f"{label} counters "
                        f"{self._counters(pipeline)} != {baseline_counters}"))

        # --- Recovery invariants (repro.core.checkpoint) -------------
        if live.records:
            kill_index = len(live.records) // 2
            for label, shards, backend in (("validator", None, "serial"),
                                           ("pipeline N=2", 2, "serial")):
                recovered = self._recover_replay(live, shards, backend,
                                                 kill_index)
                stream = canonical_alarm_stream(recovered.alarms)
                if stream != expected:
                    violations.append(InvariantViolation(
                        "RECOVERY_DIVERGENCE",
                        f"{label} restore + WAL replay after a kill at "
                        f"record {kill_index}/{len(live.records)} diverged "
                        f"({_sha256(stream)[:12]} != "
                        f"{_sha256(expected)[:12]})"))

        # --- Observability invariants --------------------------------
        from repro.obs.metrics import MetricsRegistry
        seq_tracer = Tracer()
        traced = self._replay(live, tracer=seq_tracer,
                              metrics=MetricsRegistry())
        report.trace_digest = _sha256(seq_tracer.canonical())
        if canonical_alarm_stream(traced.alarms) != expected:
            violations.append(InvariantViolation(
                "OBSERVER_IMPURITY",
                "tracing + metrics changed the sequential alarm stream"))
        for shards in self.traced_shards:
            tracer = Tracer()
            pipeline = self._replay(live, shards=shards, tracer=tracer,
                                    metrics=MetricsRegistry())
            if canonical_alarm_stream(pipeline.alarms) != expected:
                violations.append(InvariantViolation(
                    "OBSERVER_IMPURITY",
                    f"tracing changed the pipeline N={shards} alarm stream"))
            if _sha256(tracer.canonical()) != report.trace_digest:
                from repro.obs.diff import diff_tracers, first_divergence_detail
                diff = diff_tracers(seq_tracer, tracer)
                report.artifacts.setdefault("trace_diff", {
                    "left": "sequential replay (traced)",
                    "right": f"pipeline N={shards} (traced)",
                    **diff.to_dict()})
                violations.append(InvariantViolation(
                    "TRACE_DIVERGENCE",
                    f"canonical trace diverged at N={shards}; "
                    + first_divergence_detail(diff)))
        return report

    def _recover_replay(self, live: LiveRun, shards: Optional[int],
                        backend: str, kill_index: int,
                        checkpoint_every: int = 8):
        """Replay through a kill → restore → WAL-replay cycle.

        Same engine construction as :meth:`_replay`, driven through
        :func:`repro.core.checkpoint.run_with_recovery`: the first engine
        is abandoned mid-stream after ``kill_index`` records, a twin is
        restored from the newest automatic checkpoint, and the WAL tail
        plus the remaining records finish the stream.
        """
        from repro.core.checkpoint import run_with_recovery
        from repro.core.pipeline import ValidationPipeline
        from repro.core.timeouts import StaticTimeout
        from repro.core.validator import Validator
        from repro.faults.injector import default_policy_engine

        spec = live.spec
        lookup = live.mastership.get

        def make(sim):
            kwargs = dict(timeout=StaticTimeout(spec.timeout_ms),
                          policy_engine=default_policy_engine(),
                          mastership_lookup=lookup)
            if shards is None:
                return Validator(sim, spec.k, **kwargs)
            return ValidationPipeline(sim, spec.k, shards=shards,
                                      backend=backend, **kwargs)

        engine = run_with_recovery(live.records, make, kill_index,
                                   checkpoint_every=checkpoint_every,
                                   settle_ms=self.settle_ms)
        close = getattr(engine, "close", None)
        if close is not None:
            close()
        return engine

    # ------------------------------------------------------------------
    # Divergence triage
    # ------------------------------------------------------------------
    def _perturbed_timeout(self, spec: ScenarioSpec, backend: str,
                           shards: int) -> Optional[float]:
        """The perturbed absolute θτ (ms) for this variant, or ``None``."""
        perturb = self.perturb
        if not perturb:
            return None
        if perturb.get("backend", "serial") != backend:
            return None
        if perturb.get("shards") != shards:
            return None
        delta = float(perturb.get("timeout_delta_ms", 0.0))
        return None if delta == 0.0 else spec.timeout_ms + delta

    def _capture_divergence(self, live: LiveRun, report: OracleReport,
                            shards: int, backend: str,
                            timeout_ms: Optional[float]) -> str:
        """Re-run the diverging pair traced; attach diff + flight artifacts.

        Returns the one-line first-divergence summary appended to the
        violation detail. Only the *first* engine divergence is captured —
        later variants usually diverge for the same root cause, and each
        capture costs two more replays.
        """
        from repro.obs.diff import diff_tracers, first_divergence_detail
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.recorder import FlightRecorder
        from repro.obs.trace import Tracer

        left = Tracer()
        self._replay(live, tracer=left, metrics=MetricsRegistry())
        right = Tracer()
        recorder = FlightRecorder()
        engine = self._replay(live, shards=shards, backend=backend,
                              tracer=right, metrics=MetricsRegistry(),
                              recorder=recorder, timeout_ms=timeout_ms)
        diff = diff_tracers(left, right)
        recorder.trigger("engine-divergence", engine.sim.now)
        report.artifacts["trace_diff"] = {
            "left": "sequential replay",
            "right": f"pipeline N={shards} backend={backend}",
            **diff.to_dict()}
        report.artifacts["flight"] = recorder.payload(now=engine.sim.now)
        return first_divergence_detail(diff)

    @staticmethod
    def _counters(engine) -> Tuple[int, int, int]:
        return (engine.triggers_decided, engine.responses_received,
                engine.late_responses)
