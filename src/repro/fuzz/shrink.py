"""Greedy scenario shrinking: minimize a failing spec, keep the failure.

The :class:`Shrinker` takes a spec whose oracle run produced violations and
searches for a *smaller* spec that still produces (at least) the same
violation codes — the failure *signature*. Shrinking is delta-debugging in
miniature: each pass proposes one structural simplification (drop the
traffic schedule, drop a fault, shrink the topology, shrink the cluster,
shorten the traffic window, tighten the settle window) and keeps the
proposal only if the signature survives. Passes repeat until a full sweep
makes no progress or the evaluation budget runs out.

Every candidate evaluation is a complete oracle run, so the budget is the
knob that bounds wall-clock; results are memoized by spec digest so
revisited candidates are free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ValidationError, WorkloadError
from repro.fuzz.oracle import DifferentialOracle, OracleReport
from repro.fuzz.scenario import ScenarioSpec, _clamp_fault_params

#: Default cap on oracle evaluations per shrink.
DEFAULT_BUDGET = 40


@dataclass
class ShrinkStep:
    """One accepted simplification."""

    description: str
    digest: str


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal spec plus the audit trail."""

    original: ScenarioSpec
    minimized: ScenarioSpec
    signature: Tuple[str, ...]
    evaluations: int
    steps: List[ShrinkStep] = field(default_factory=list)
    #: The oracle report for the minimized spec (the repro's evidence).
    report: Optional[OracleReport] = None

    @property
    def shrunk(self) -> bool:
        return self.minimized.digest() != self.original.digest()


class Shrinker:
    """Greedy structural minimizer for failing scenario specs."""

    def __init__(self, oracle: Optional[DifferentialOracle] = None,
                 budget: int = DEFAULT_BUDGET):
        self.oracle = oracle if oracle is not None else DifferentialOracle()
        self.budget = budget
        self._evaluations = 0
        self._cache: Dict[str, OracleReport] = {}

    # ------------------------------------------------------------------
    def shrink(self, spec: ScenarioSpec,
               signature: Optional[Tuple[str, ...]] = None) -> ShrinkResult:
        """Minimize ``spec`` while preserving its violation signature.

        ``signature`` defaults to the codes of a fresh oracle run on
        ``spec``; passing the codes from an earlier run saves one
        evaluation. Raises :class:`ValueError` if the spec is not failing.
        """
        self._evaluations = 0
        self._cache = {}
        if signature is None:
            signature = self._evaluate(spec).codes()
        if not signature:
            raise ValueError("cannot shrink a passing spec (no violations)")
        target = frozenset(signature)

        current = spec
        steps: List[ShrinkStep] = []
        progress = True
        while progress and self._evaluations < self.budget:
            progress = False
            for description, candidate in self._candidates(current):
                if self._evaluations >= self.budget:
                    break
                if candidate.digest() == current.digest():
                    continue
                if self._still_fails(candidate, target):
                    current = candidate
                    steps.append(ShrinkStep(description, candidate.digest()))
                    progress = True
                    break  # restart the pass list against the new spec
        return ShrinkResult(
            original=spec, minimized=current, signature=tuple(sorted(target)),
            evaluations=self._evaluations, steps=steps,
            report=self._cache.get(current.digest()))

    # ------------------------------------------------------------------
    # Candidate generation (ordered: biggest simplifications first)
    # ------------------------------------------------------------------
    def _candidates(self, spec: ScenarioSpec):
        if spec.traffic is not None:
            yield "drop traffic schedule", spec.replace(traffic=None)
        for index in range(len(spec.faults)):
            kept = spec.faults[:index] + spec.faults[index + 1:]
            yield (f"drop fault {spec.faults[index].name}",
                   spec.replace(faults=kept))
        for switches in self._lower(spec.switches, floor=2):
            candidate = spec.replace(switches=switches)
            yield (f"shrink topology to {switches} switches",
                   self._refit(candidate))
        for n in self._lower(spec.n, floor=2):
            candidate = spec.replace(n=n, k=min(spec.k, n - 1))
            yield f"shrink cluster to n={n}", self._refit(candidate)
        if spec.traffic is not None:
            traffic = spec.traffic
            if traffic.duration_ms > 50.0:
                shorter = traffic.__class__(
                    rate_per_s=traffic.rate_per_s,
                    duration_ms=max(50.0, traffic.duration_ms / 2),
                    arp_fraction=traffic.arp_fraction,
                    host_join_rate_per_s=traffic.host_join_rate_per_s)
                yield (f"halve traffic window to {shorter.duration_ms:.0f}ms",
                       spec.replace(traffic=shorter))
            if traffic.host_join_rate_per_s:
                calm = traffic.__class__(
                    rate_per_s=traffic.rate_per_s,
                    duration_ms=traffic.duration_ms,
                    arp_fraction=traffic.arp_fraction)
                yield "drop host churn", spec.replace(traffic=calm)
        if spec.settle_timeouts > 2.0:
            yield ("narrow settle window to 2 timeouts",
                   spec.replace(settle_timeouts=2.0))

    @staticmethod
    def _lower(value: int, floor: int):
        """Try the floor first (best case), then halfway, then value-1."""
        seen = set()
        for candidate in (floor, (value + floor) // 2, value - 1):
            if floor <= candidate < value and candidate not in seen:
                seen.add(candidate)
                yield candidate

    @staticmethod
    def _refit(spec: ScenarioSpec) -> ScenarioSpec:
        """Re-fit fault parameters invalidated by a structural shrink."""
        if not spec.faults:
            return spec
        return spec.replace(faults=tuple(
            _clamp_fault_params(fault, spec) for fault in spec.faults))

    # ------------------------------------------------------------------
    def _still_fails(self, candidate: ScenarioSpec,
                     target: frozenset) -> bool:
        try:
            report = self._evaluate(candidate)
        except (ValidationError, WorkloadError):
            # A candidate the harness cannot even run is not a simpler
            # repro of the same failure.
            return False
        return target <= set(report.codes())

    def _evaluate(self, spec: ScenarioSpec) -> OracleReport:
        digest = spec.digest()
        if digest not in self._cache:
            self._evaluations += 1
            self._cache[digest] = self.oracle.run(spec)
        return self._cache[digest]
