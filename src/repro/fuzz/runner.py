"""Fuzz campaign driver: generate → run oracle → shrink counterexamples.

A campaign walks seeds ``base_seed, base_seed+1, …`` for ``runs`` scenarios
or until an (optional) wall-clock budget runs out. The clock is *injected*
(any zero-argument callable returning seconds) so the campaign itself stays
free of wall-clock reads — the CLI passes ``time.monotonic``, tests pass a
fake. Every failing seed is shrunk (unless disabled) and reported as a
:class:`Counterexample` carrying both the original and minimized specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.fuzz.oracle import DifferentialOracle, OracleReport
from repro.fuzz.scenario import ScenarioGen, ScenarioSpec
from repro.fuzz.shrink import Shrinker, ShrinkResult


@dataclass
class Counterexample:
    """One failing seed, plus its shrunk form when shrinking ran."""

    seed: int
    spec: ScenarioSpec
    report: OracleReport
    shrink: Optional[ShrinkResult] = None

    @property
    def minimal_spec(self) -> ScenarioSpec:
        return self.shrink.minimized if self.shrink is not None else self.spec

    def to_dict(self) -> dict:
        payload = {
            "seed": self.seed,
            "violations": [{"code": v.code, "detail": v.detail}
                           for v in self.report.violations],
            "spec": self.spec.to_dict(),
            "minimal_spec": self.minimal_spec.to_dict(),
        }
        if self.shrink is not None:
            payload["shrink"] = {
                "evaluations": self.shrink.evaluations,
                "steps": [s.description for s in self.shrink.steps],
            }
        return payload


@dataclass
class CampaignResult:
    """Everything one fuzz campaign produced."""

    base_seed: int
    requested_runs: int
    completed_runs: int = 0
    reports: List[OracleReport] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    #: True when the time budget expired before ``requested_runs`` ran.
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def to_dict(self) -> dict:
        return {
            "base_seed": self.base_seed,
            "requested_runs": self.requested_runs,
            "completed_runs": self.completed_runs,
            "budget_exhausted": self.budget_exhausted,
            "ok": self.ok,
            "counterexamples": [c.to_dict() for c in self.counterexamples],
            "runs": [{"seed": r.spec.seed,
                      "ok": r.ok,
                      "codes": list(r.codes()),
                      "triggers_decided": r.triggers_decided,
                      "spec_digest": r.spec_digest,
                      "alarm_digest": r.alarm_digest,
                      "trace_digest": r.trace_digest}
                     for r in self.reports],
        }


def run_campaign(
    base_seed: int,
    runs: int,
    oracle: Optional[DifferentialOracle] = None,
    gen: Optional[ScenarioGen] = None,
    shrink: bool = True,
    shrink_budget: int = 40,
    time_budget_s: Optional[float] = None,
    clock: Optional[Callable[[], float]] = None,
    on_progress: Optional[Callable[[OracleReport], None]] = None,
) -> CampaignResult:
    """Run ``runs`` seeded scenarios starting at ``base_seed``.

    ``time_budget_s`` requires ``clock``; the budget is checked *between*
    scenarios, so one in-flight scenario may overshoot it. ``on_progress``
    is invoked with each report as it lands (the CLI uses it to stream
    per-seed lines).
    """
    if time_budget_s is not None and clock is None:
        raise ValueError("time_budget_s requires an injected clock")
    oracle = oracle if oracle is not None else DifferentialOracle()
    gen = gen if gen is not None else ScenarioGen()
    result = CampaignResult(base_seed=base_seed, requested_runs=runs)
    started = clock() if clock is not None else 0.0

    for index in range(runs):
        if (time_budget_s is not None
                and clock() - started >= time_budget_s
                and result.completed_runs > 0):
            result.budget_exhausted = True
            break
        spec = gen.spec(base_seed + index)
        report = oracle.run(spec)
        result.reports.append(report)
        result.completed_runs += 1
        if on_progress is not None:
            on_progress(report)
        if report.ok:
            continue
        counterexample = Counterexample(seed=spec.seed, spec=spec,
                                        report=report)
        if shrink:
            shrinker = Shrinker(oracle=oracle, budget=shrink_budget)
            counterexample.shrink = shrinker.shrink(
                spec, signature=report.codes())
        result.counterexamples.append(counterexample)
    return result
