"""Seed-driven scenario generation for the JURY fuzzer.

A :class:`ScenarioSpec` is the *complete* description of one fuzz case:
the hosting shape (topology family and size, controller kind, cluster
size), the validation config (k, θτ), an optional traffic schedule, and
an optional fault schedule. Specs are frozen, JSON-round-trippable, and
canonically encodable, so a failing case can be shrunk, saved into the
regression corpus, and replayed byte-for-byte forever after.

:class:`ScenarioGen` draws specs from a single PRNG seed. Every random
choice comes from ``random.Random(f"jury-fuzz/{seed}")`` — never the
wall clock, never module-level :mod:`random` — so the same seed yields
the same spec in any process on any machine. The generator deliberately
draws from ranges in which JURY's guarantees are *expected* to hold
(k ≥ 2 so consensus has a quorum, faults from the detectable catalog);
hand-written corpus entries are free to leave that envelope, which is
exactly how the planted k=0 evasion counterexample is expressed.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ValidationError

#: Spec serialization format version (bump on incompatible change).
SPEC_FORMAT = 1


@dataclass(frozen=True)
class TrafficSpec:
    """A paced benign-traffic window (see :class:`~repro.workloads.traffic.TrafficDriver`)."""

    rate_per_s: float = 300.0
    duration_ms: float = 200.0
    arp_fraction: float = 0.3
    host_join_rate_per_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "rate_per_s": self.rate_per_s,
            "duration_ms": self.duration_ms,
            "arp_fraction": self.arp_fraction,
            "host_join_rate_per_s": self.host_join_rate_per_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrafficSpec":
        return cls(**data)


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault from the fuzz catalog plus its parameters.

    ``deadline_ms`` overrides the θτ-derived detection deadline (the
    scenario's own settle window); ``None`` keeps the catalog default.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()
    deadline_ms: Optional[float] = None

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"name": self.name,
                                      "params": self.param_dict()}
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        return cls(name=data["name"],
                   params=tuple(sorted(data.get("params", {}).items())),
                   deadline_ms=data.get("deadline_ms"))


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to run (and re-run) one fuzz case."""

    seed: int = 0
    kind: str = "onos"
    n: int = 4
    k: int = 3
    switches: int = 6
    timeout_ms: float = 250.0
    traffic: Optional[TrafficSpec] = None
    faults: Tuple[FaultSpec, ...] = ()
    #: Extra settle after the last stimulus, in θτ multiples.
    settle_timeouts: float = 4.0

    def __post_init__(self):
        if self.n < 2:
            raise ValidationError(f"fuzz spec needs n >= 2: {self.n}")
        if not 0 <= self.k <= self.n - 1:
            raise ValidationError(
                f"fuzz spec needs k in [0, n-1]: k={self.k}, n={self.n}")
        if self.switches < 2:
            raise ValidationError(
                f"fuzz spec needs >= 2 switches: {self.switches}")
        if self.timeout_ms <= 0:
            raise ValidationError(
                f"fuzz spec needs a positive timeout: {self.timeout_ms}")
        for fault in self.faults:
            if fault.name not in FUZZ_FAULTS:
                raise ValidationError(
                    f"unknown fuzz fault {fault.name!r} "
                    f"(known: {', '.join(sorted(FUZZ_FAULTS))})")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "format": SPEC_FORMAT,
            "seed": self.seed,
            "kind": self.kind,
            "n": self.n,
            "k": self.k,
            "switches": self.switches,
            "timeout_ms": self.timeout_ms,
            "traffic": None if self.traffic is None else self.traffic.to_dict(),
            "faults": [fault.to_dict() for fault in self.faults],
            "settle_timeouts": self.settle_timeouts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        fmt = data.get("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ValidationError(f"unsupported spec format {fmt!r}")
        traffic = data.get("traffic")
        return cls(
            seed=data.get("seed", 0),
            kind=data.get("kind", "onos"),
            n=data["n"],
            k=data["k"],
            switches=data["switches"],
            timeout_ms=data["timeout_ms"],
            traffic=None if traffic is None else TrafficSpec.from_dict(traffic),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())),
            settle_timeouts=data.get("settle_timeouts", 4.0),
        )

    def canonical_json(self) -> str:
        """Byte-stable canonical encoding (sorted keys, tight separators)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical encoding — the spec's stable identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def replace(self, **changes) -> "ScenarioSpec":
        import dataclasses
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        parts = [f"seed={self.seed}", f"{self.kind}", f"n={self.n}",
                 f"k={self.k}", f"sw={self.switches}",
                 f"θτ={self.timeout_ms:.0f}ms"]
        if self.traffic is not None:
            parts.append(f"traffic={self.traffic.rate_per_s:.0f}/s"
                         f"×{self.traffic.duration_ms:.0f}ms")
        for fault in self.faults:
            parts.append(f"fault={fault.name}")
        return " ".join(parts)


# ----------------------------------------------------------------------
# The fuzzable fault catalog
# ----------------------------------------------------------------------
# Each entry knows how to draw valid parameters for a draft spec and how
# to build the live FaultScenario. Only faults whose detection is a
# published JURY guarantee inside the generator's envelope belong here —
# the oracle treats a missed detection as a counterexample, not noise.

@dataclass(frozen=True)
class FuzzFault:
    """Catalog entry: parameter drawer + scenario builder for one fault."""

    name: str
    draw_params: Callable[[random.Random, "ScenarioSpec"], Tuple[Tuple[str, object], ...]]
    build: Callable[[Dict[str, object]], object]
    #: Smallest k at which detection is guaranteed (generator floor).
    min_k: int = 0


def _draw_controller(rng: random.Random, spec: ScenarioSpec) -> str:
    return f"c{rng.randint(1, spec.n)}"


def _draw_adjacent_dpids(rng: random.Random, spec: ScenarioSpec) -> Tuple[int, int]:
    a = rng.randint(1, spec.switches - 1)
    return a, a + 1


def _clamp_fault_params(fault: FaultSpec, spec: ScenarioSpec) -> FaultSpec:
    """Re-fit a fault's parameters after the spec shrank under it."""
    params = fault.param_dict()
    changed = False
    for key in ("dpid_a", "dpid_b"):
        if key in params and params[key] > spec.switches:
            params[key] = spec.switches if key == "dpid_b" else spec.switches - 1
            changed = True
    if ("dpid_a" in params and "dpid_b" in params
            and params["dpid_a"] >= params["dpid_b"]):
        params["dpid_a"], params["dpid_b"] = spec.switches - 1, spec.switches
        changed = True
    if "faulty_controller" in params:
        index = int(str(params["faulty_controller"]).lstrip("c") or 1)
        if index > spec.n:
            params["faulty_controller"] = f"c{spec.n}"
            changed = True
    if not changed:
        return fault
    return FaultSpec(name=fault.name,
                     params=tuple(sorted(params.items())),
                     deadline_ms=fault.deadline_ms)


def _build_link_failure(params):
    from repro.faults.synthetic import LinkFailureFault
    return LinkFailureFault(params.get("dpid_a", 1), params.get("dpid_b", 2))


def _build_undesirable_flow_mod(params):
    from repro.faults.synthetic import UndesirableFlowModFault
    return UndesirableFlowModFault(params.get("faulty_controller", "c2"))


def _build_faulty_proactive(params):
    from repro.faults.synthetic import FaultyProactiveFault
    return FaultyProactiveFault(params.get("faulty_controller", "c3"),
                                params.get("dpid_a", 2),
                                params.get("dpid_b", 3))


def _build_response_corruption(params):
    from repro.faults.generic import ResponseCorruptionFault
    return ResponseCorruptionFault(params.get("faulty_controller", "c1"))


def _build_response_omission(params):
    from repro.faults.generic import ResponseOmissionFault
    return ResponseOmissionFault(params.get("faulty_controller", "c2"))


def _build_crash(params):
    from repro.faults.generic import CrashFault
    return CrashFault(params.get("faulty_controller", "c1"))


FUZZ_FAULTS: Dict[str, FuzzFault] = {
    "link-failure": FuzzFault(
        name="link-failure",
        draw_params=lambda rng, spec: tuple(sorted(
            zip(("dpid_a", "dpid_b"), _draw_adjacent_dpids(rng, spec)))),
        build=_build_link_failure,
        min_k=2),
    "undesirable-flow-mod": FuzzFault(
        name="undesirable-flow-mod",
        draw_params=lambda rng, spec: (
            ("faulty_controller", _draw_controller(rng, spec)),),
        build=_build_undesirable_flow_mod),
    "faulty-proactive": FuzzFault(
        name="faulty-proactive",
        draw_params=lambda rng, spec: tuple(sorted(
            (("faulty_controller", _draw_controller(rng, spec)),)
            + tuple(zip(("dpid_a", "dpid_b"),
                        _draw_adjacent_dpids(rng, spec))))),
        build=_build_faulty_proactive),
    "response-corruption": FuzzFault(
        name="response-corruption",
        draw_params=lambda rng, spec: (
            ("faulty_controller", _draw_controller(rng, spec)),),
        build=_build_response_corruption,
        min_k=2),
    "response-omission": FuzzFault(
        name="response-omission",
        draw_params=lambda rng, spec: (
            ("faulty_controller", _draw_controller(rng, spec)),),
        build=_build_response_omission,
        min_k=1),
    "crash": FuzzFault(
        name="crash",
        draw_params=lambda rng, spec: (
            ("faulty_controller", _draw_controller(rng, spec)),),
        build=_build_crash,
        min_k=1),
}


def build_fault_scenario(fault: FaultSpec):
    """Instantiate the live :class:`~repro.faults.base.FaultScenario`."""
    return FUZZ_FAULTS[fault.name].build(fault.param_dict())


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------

class ScenarioGen:
    """Deterministic scenario generator: one seed in, one spec out.

    ``spec(seed)`` is a pure function of the seed — the generator holds
    no mutable draw state, so fixtures can share one instance freely.
    """

    #: Probability that a generated scenario carries a fault schedule.
    FAULT_PROBABILITY = 0.4

    def spec(self, seed: int) -> ScenarioSpec:
        """Draw the scenario for ``seed``."""
        rng = random.Random(f"jury-fuzz/{seed}")
        n = rng.randint(3, 5)
        k = rng.randint(2, n - 1)
        switches = rng.randint(4, 8)
        timeout_ms = float(rng.choice((150, 200, 250, 300)))
        traffic = TrafficSpec(
            rate_per_s=float(rng.choice((200, 300, 400, 500))),
            duration_ms=float(rng.choice((120, 180, 240))),
            arp_fraction=rng.choice((0.0, 0.3)),
            host_join_rate_per_s=rng.choice((0.0, 0.0, 2.0)),
        )
        draft = ScenarioSpec(seed=seed, kind="onos", n=n, k=k,
                             switches=switches, timeout_ms=timeout_ms,
                             traffic=traffic)
        faults: Tuple[FaultSpec, ...] = ()
        if rng.random() < self.FAULT_PROBABILITY:
            eligible = sorted(name for name, entry in FUZZ_FAULTS.items()
                              if entry.min_k <= k)
            name = rng.choice(eligible)
            faults = (FaultSpec(
                name=name,
                params=FUZZ_FAULTS[name].draw_params(rng, draft)),)
        return draft.replace(faults=faults)

    def specs(self, base_seed: int, count: int):
        """The ``count`` specs for seeds ``base_seed .. base_seed+count-1``."""
        return [self.spec(base_seed + index) for index in range(count)]
