"""Seeded scenario fuzzing with differential oracles (docs/fuzzing.md).

``ScenarioGen`` turns a seed into a complete scenario; ``DifferentialOracle``
runs it live and replays the recorded validator stream through every engine,
checking the invariant catalog; ``Shrinker`` minimizes counterexamples;
``corpus`` persists them as regression repros under ``tests/corpus/``.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    ReplayOutcome,
    default_corpus_dir,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.oracle import (
    DifferentialOracle,
    InvariantViolation,
    OracleReport,
)
from repro.fuzz.runner import CampaignResult, Counterexample, run_campaign
from repro.fuzz.scenario import (
    FUZZ_FAULTS,
    FaultSpec,
    ScenarioGen,
    ScenarioSpec,
    TrafficSpec,
    build_fault_scenario,
)
from repro.fuzz.shrink import Shrinker, ShrinkResult

__all__ = [
    "CampaignResult",
    "CorpusEntry",
    "Counterexample",
    "DifferentialOracle",
    "FUZZ_FAULTS",
    "FaultSpec",
    "InvariantViolation",
    "OracleReport",
    "ReplayOutcome",
    "ScenarioGen",
    "ScenarioSpec",
    "Shrinker",
    "ShrinkResult",
    "TrafficSpec",
    "build_fault_scenario",
    "default_corpus_dir",
    "load_corpus",
    "load_entry",
    "replay_entry",
    "run_campaign",
    "save_entry",
]
