"""The regression corpus: minimal repros saved as JSON, replayed forever.

Every counterexample the fuzzer finds (and shrinks) is saved as one
``tests/corpus/*.json`` file::

    {
      "format": 1,
      "name": "k0-response-corruption-evades",
      "spec": { ... ScenarioSpec.to_dict() ... },
      "expect": {"violations": ["FAULT_UNDETECTED"]},
      "notes": "why this spec breaks, for the next reader",
      "oracle": {"perturb": {...}}   # optional planted oracle knob
    }

``expect.violations`` is the *exact* sorted violation-code signature the
oracle must reproduce — an entry fails its replay either if the historic
violation disappears silently (the bug regressed into passing without
anyone updating the corpus) or if new violations appear. Fixing a bug
legitimately flips an entry: the fix's PR updates or retires the entry,
which is the intended triage workflow (docs/fuzzing.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.errors import ValidationError
from repro.fuzz.oracle import DifferentialOracle, OracleReport
from repro.fuzz.scenario import ScenarioSpec

#: Corpus file format version (bump on incompatible change).
CORPUS_FORMAT = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One minimal repro: a spec plus its expected violation signature."""

    name: str
    spec: ScenarioSpec
    expect: Tuple[str, ...]
    notes: str = ""
    #: Optional oracle configuration, e.g. ``{"perturb": {"backend":
    #: "serial", "shards": 4, "timeout_delta_ms": 40.0}}`` — the planted
    #: fire-drill knob (see DifferentialOracle.perturb). ``None`` replays
    #: with whatever oracle the caller supplies, unmodified.
    oracle: Optional[dict] = None

    def to_dict(self) -> dict:
        data = {
            "format": CORPUS_FORMAT,
            "name": self.name,
            "spec": self.spec.to_dict(),
            "expect": {"violations": list(self.expect)},
            "notes": self.notes,
        }
        if self.oracle is not None:
            data["oracle"] = self.oracle
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        fmt = data.get("format", CORPUS_FORMAT)
        if fmt != CORPUS_FORMAT:
            raise ValidationError(f"unsupported corpus format {fmt!r}")
        if "name" not in data or "spec" not in data:
            raise ValidationError("corpus entry needs 'name' and 'spec'")
        expect = tuple(sorted(data.get("expect", {}).get("violations", ())))
        oracle = data.get("oracle")
        if oracle is not None and not isinstance(oracle, dict):
            raise ValidationError("corpus entry 'oracle' must be an object")
        return cls(name=data["name"],
                   spec=ScenarioSpec.from_dict(data["spec"]),
                   expect=expect,
                   notes=data.get("notes", ""),
                   oracle=oracle)


@dataclass
class ReplayOutcome:
    """The verdict of replaying one corpus entry."""

    entry: CorpusEntry
    report: OracleReport
    #: True iff the oracle reproduced exactly the expected signature.
    matched: bool
    detail: str = ""


def save_entry(entry: CorpusEntry, directory: Path) -> Path:
    """Write ``entry`` as ``<directory>/<name>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    path.write_text(json.dumps(entry.to_dict(), indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path


def load_entry(path: Path) -> CorpusEntry:
    """Load one corpus file; raises :class:`ValidationError` on bad data."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"unreadable corpus entry {path}: {exc}") from exc
    return CorpusEntry.from_dict(data)


def load_corpus(directory: Path) -> List[CorpusEntry]:
    """All entries under ``directory``, sorted by name for determinism."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = [load_entry(path) for path in sorted(directory.glob("*.json"))]
    names = [entry.name for entry in entries]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate corpus entry names in {directory}")
    return entries


def replay_entry(entry: CorpusEntry,
                 oracle: Optional[DifferentialOracle] = None) -> ReplayOutcome:
    """Run an entry's spec and compare the signature against ``expect``."""
    oracle = oracle if oracle is not None else DifferentialOracle()
    perturb = (entry.oracle or {}).get("perturb")
    if perturb:
        # The entry plants its own oracle perturbation (fire drill); keep
        # the caller's differential matrix but swap in the perturbed knob.
        oracle = DifferentialOracle(
            shard_counts=oracle.shard_counts,
            traced_shards=oracle.traced_shards,
            settle_ms=oracle.settle_ms,
            backends=oracle.backends,
            perturb=perturb)
    report = oracle.run(entry.spec)
    actual = report.codes()
    matched = actual == entry.expect
    if matched:
        detail = ""
    elif not actual:
        detail = (f"expected {list(entry.expect)} but the run is now clean — "
                  "if a fix landed, update or retire this entry")
    else:
        detail = f"expected {list(entry.expect)}, got {list(actual)}"
    return ReplayOutcome(entry=entry, report=report,
                         matched=matched, detail=detail)


def default_corpus_dir() -> Path:
    """``tests/corpus`` relative to the repository root, if resolvable.

    Falls back to ``tests/corpus`` under the current working directory —
    callers that care pass an explicit path (the CLI exposes ``--corpus``).
    """
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "corpus"
        if candidate.is_dir():
            return candidate
    return Path("tests") / "corpus"
