"""Cluster manager: membership, mastership, and topology wiring.

Supports the HA configurations the paper experiments with (§VI):

* ``ANY_CONTROLLER_ONE_MASTER`` (ONOS): every switch connects to every
  controller; exactly one is its master. Secondary connections carry the
  mastership request/notify chatter measured in §VII-B.2.
* ``SINGLE_CONTROLLER`` (ODL): the network is partitioned; each switch
  connects only to its one governing controller (JURY's OVS still holds
  channels to the others for replication).
* ``ACTIVE_PASSIVE``: all switches connect to a single active controller;
  the rest are passive replicas that take over on failover.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.controllers.base import Controller
from repro.errors import ClusterError
from repro.net.channel import ByteCounter, ControlChannel
from repro.net.ovs import ReplicatingProxy
from repro.net.topology import Topology
from repro.sim.latency import Fixed
from repro.sim.simulator import Simulator


class HaMode(enum.Enum):
    """HA connection-management configurations [4]."""

    ANY_CONTROLLER_ONE_MASTER = "any_controller_one_master"
    SINGLE_CONTROLLER = "single_controller"
    ACTIVE_PASSIVE = "active_passive"


class ControllerCluster:
    """A set of controller replicas wired to one topology."""

    #: Mastership beacon modelling (§VII-B.2: secondaries send ~4 Mbps of
    #: Hazelcast mastership chatter each under replicated load).
    MASTERSHIP_BEACON_BYTES = 120
    MASTERSHIP_BEACON_PERIOD_MS = 5.0

    def __init__(self, sim: Simulator, ha_mode: HaMode = HaMode.ANY_CONTROLLER_ONE_MASTER,
                 name: str = "cluster"):
        self.sim = sim
        self.ha_mode = ha_mode
        self.name = name
        self.controllers: Dict[str, Controller] = {}
        self.election_ids: Dict[str, int] = {}
        self.mastership: Dict[int, str] = {}
        self.topology: Optional[Topology] = None
        self.proxies: Dict[int, ReplicatingProxy] = {}
        self._started = False
        self._beacons_enabled = True

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_controller(self, controller: Controller) -> None:
        """Join a replica to the cluster."""
        if controller.id in self.controllers:
            raise ClusterError(f"duplicate controller {controller.id}")
        self.controllers[controller.id] = controller
        self.election_ids[controller.id] = controller.election_id
        controller.cluster = self

    @property
    def size(self) -> int:
        return len(self.controllers)

    def controller_ids(self) -> List[str]:
        """Replica ids in join order."""
        return list(self.controllers)

    def alive_controllers(self) -> List[Controller]:
        """Replicas currently alive."""
        return [c for c in self.controllers.values() if c.alive]

    def election_id_of(self, controller_id: str) -> int:
        """The cluster registry's view of a replica's election id."""
        return self.election_ids.get(controller_id, 0)

    def announce_election_id(self, controller_id: str, election_id: int) -> None:
        """Update the registry after a reboot (peers' *beliefs* may lag)."""
        self.election_ids[controller_id] = election_id

    # ------------------------------------------------------------------
    # Mastership
    # ------------------------------------------------------------------
    def master_of(self, dpid: int) -> Optional[str]:
        """The controller currently governing switch ``dpid``.

        Mastership does NOT silently fail over here: an undetected crash
        leaves the dead controller as master until :meth:`crash` (or an
        operator) reassigns — exactly the window JURY's omission detection
        covers.
        """
        return self.mastership.get(dpid)

    def _failover(self, dpid: int) -> Optional[str]:
        alive = self.alive_controllers()
        if not alive:
            return None
        new_master = min(alive, key=lambda c: c.election_id).id
        self.mastership[dpid] = new_master
        proxy = self.proxies.get(dpid)
        if proxy is not None:
            proxy.set_primary(new_master)
        return new_master

    def set_master(self, dpid: int, controller_id: str) -> None:
        """Force mastership (tests, failover drills)."""
        if controller_id not in self.controllers:
            raise ClusterError(f"unknown controller {controller_id}")
        self.mastership[dpid] = controller_id
        proxy = self.proxies.get(dpid)
        if proxy is not None:
            proxy.set_primary(controller_id)

    def crash(self, controller_id: str) -> None:
        """Fail-stop a replica and fail its switches over."""
        controller = self.controllers.get(controller_id)
        if controller is None:
            raise ClusterError(f"unknown controller {controller_id}")
        controller.crash()
        for dpid, master in list(self.mastership.items()):
            if master == controller_id:
                self._failover(dpid)

    # ------------------------------------------------------------------
    # Topology wiring
    # ------------------------------------------------------------------
    def connect_topology(self, topology: Topology,
                         control_counter: Optional[ByteCounter] = None) -> None:
        """Create per-switch proxies and control channels, assign masters.

        In ``ANY_CONTROLLER_ONE_MASTER`` every controller gets a channel and
        performs the handshake; otherwise only the master does (the other
        channels exist solely for JURY replication).
        """
        if not self.controllers:
            raise ClusterError("add controllers before connecting a topology")
        self.topology = topology
        ids = self.controller_ids()
        for index, (dpid, switch) in enumerate(sorted(topology.switches.items())):
            if self.ha_mode == HaMode.ACTIVE_PASSIVE:
                master = ids[0]  # one active controller; the rest are passive
            else:
                master = ids[index % len(ids)]
            self.wire_switch(switch, master, control_counter=control_counter)

    def wire_switch(self, switch, master: str,
                    control_counter: Optional[ByteCounter] = None) -> "ReplicatingProxy":
        """Wire one switch to the cluster through a fresh OVS proxy.

        Used by :meth:`connect_topology` and by scenarios that connect a new
        switch at runtime (e.g. the database-locking fault, which fires on
        the FEATURES_REPLY of a fresh connect).
        """
        dpid = switch.dpid
        self.mastership[dpid] = master
        proxy = ReplicatingProxy(self.sim, switch, primary_id=master)
        self.proxies[dpid] = proxy
        switch_channel = ControlChannel(
            self.sim, switch, proxy, latency=Fixed(0.05),
            name=f"s{dpid}-proxy", counter=control_counter)
        switch.connect_control(switch_channel)
        proxy.connect_switch(switch_channel)
        for controller_id in self.controller_ids():
            controller = self.controllers[controller_id]
            channel = ControlChannel(
                self.sim, proxy, controller,
                latency=controller.profile.control_latency,
                name=f"s{dpid}-{controller_id}", counter=control_counter)
            proxy.connect_controller(controller_id, channel)
            handshakes = (
                self.ha_mode == HaMode.ANY_CONTROLLER_ONE_MASTER
                or controller_id == master
            )
            if handshakes:
                controller.attach_switch_channel(channel)
        return proxy

    def start(self) -> None:
        """Start controller applications and background chatter."""
        if self._started:
            return
        self._started = True
        for controller in self.controllers.values():
            for app in controller.apps:
                app.start()
        if (self.ha_mode == HaMode.ANY_CONTROLLER_ONE_MASTER
                and self._beacons_enabled and self.size > 1):
            self.sim.schedule(self.MASTERSHIP_BEACON_PERIOD_MS, self._mastership_beacons)

    def disable_mastership_beacons(self) -> None:
        """Turn off beacon chatter (microbenchmarks that isolate other traffic)."""
        self._beacons_enabled = False

    def _mastership_beacons(self) -> None:
        """Periodic mastership request/notify chatter on the store channel."""
        counter = self._store_counter()
        if counter is not None:
            for controller in self.alive_controllers():
                non_mastered = sum(
                    1 for dpid in controller.connected_switches
                    if self.mastership.get(dpid) != controller.id)
                if non_mastered:
                    counter.add(self.MASTERSHIP_BEACON_BYTES * non_mastered)
        self.sim.schedule(self.MASTERSHIP_BEACON_PERIOD_MS, self._mastership_beacons)

    def _store_counter(self) -> Optional[ByteCounter]:
        for controller in self.controllers.values():
            return controller.store.cluster.counter
        return None

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def controller(self, controller_id: str) -> Controller:
        """Look up a replica by id."""
        try:
            return self.controllers[controller_id]
        except KeyError:
            raise ClusterError(f"unknown controller {controller_id}") from None

    def proxy_of(self, dpid: int) -> ReplicatingProxy:
        """The OVS proxy fronting switch ``dpid``."""
        try:
            return self.proxies[dpid]
        except KeyError:
            raise ClusterError(f"no proxy for switch {dpid}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ControllerCluster(n={self.size}, mode={self.ha_mode.value}, "
                f"switches={len(self.proxies)})")
