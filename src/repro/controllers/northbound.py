"""Northbound REST-like API.

Administrators and third-party applications install OpenFlow rules through
this interface (§II). REST calls are *external* triggers — JURY's replicator
intercepts and replicates them exactly like PACKET_INs. The API object
routes requests to a chosen controller with a small HTTP-ish latency.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.controllers.cluster import ControllerCluster
from repro.errors import ClusterError
from repro.openflow.actions import Action
from repro.openflow.match import Match
from repro.openflow.messages import RestRequest
from repro.sim.latency import LatencyModel, Uniform


class NorthboundApi:
    """REST front-end for a controller cluster."""

    def __init__(self, cluster: ControllerCluster,
                 latency: Optional[LatencyModel] = None):
        self.cluster = cluster
        self.latency = latency if latency is not None else Uniform(0.3, 1.0)
        self._rng = cluster.sim.fork_rng("northbound")
        #: JURY's replicator swaps this for an intercepting deliverer.
        self.deliver = self._direct_deliver
        self.requests_sent = 0

    # ------------------------------------------------------------------
    def add_flow(self, controller_id: str, dpid: int, match: Match,
                 actions: Tuple[Action, ...], priority: int = 100) -> RestRequest:
        """POST a flow rule via ``controller_id``."""
        request = RestRequest("add_flow", {
            "dpid": dpid, "match": match, "actions": actions,
            "priority": priority,
        })
        self._send(controller_id, request)
        return request

    def delete_flow(self, controller_id: str, dpid: int, match: Match,
                    priority: int = 100) -> RestRequest:
        """DELETE a flow rule via ``controller_id``."""
        request = RestRequest("delete_flow", {
            "dpid": dpid, "match": match, "priority": priority,
        })
        self._send(controller_id, request)
        return request

    # ------------------------------------------------------------------
    def _send(self, controller_id: str, request: RestRequest) -> None:
        if controller_id not in self.cluster.controllers:
            raise ClusterError(f"unknown controller {controller_id}")
        self.requests_sent += 1
        delay = self.latency.sample(self._rng)
        self.cluster.sim.schedule(delay, self.deliver, controller_id, request)

    def _direct_deliver(self, controller_id: str, request: RestRequest) -> None:
        controller = self.cluster.controllers.get(controller_id)
        if controller is not None:
            controller.ingress_rest(request)
