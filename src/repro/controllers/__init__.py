"""Clustered SDN controllers: the systems JURY validates.

Two controller models reproduce the behaviours the paper measures:

* :class:`~repro.controllers.onos.OnosController` — eventually consistent
  (Hazelcast-like store), reactive source-destination forwarding, LLDP
  topology discovery with mastership-based link-liveness tracking.
* :class:`~repro.controllers.odl.OdlController` — strongly consistent
  (Infinispan-like store), MD-SAL-style egress queue toward the OpenFlow
  plugin, proactive destination-based forwarding plus the paper's custom
  reactive module (§VI-C).

A :class:`~repro.controllers.cluster.ControllerCluster` wires n replicas to
a topology through per-switch OVS proxies, manages mastership, and exposes
the northbound API.
"""

from repro.controllers.base import Controller, NetworkMessageRecord
from repro.controllers.cluster import ControllerCluster, HaMode
from repro.controllers.context import Taint, TriggerContext
from repro.controllers.odl import OdlController
from repro.controllers.onos import OnosController
from repro.controllers.profile import ODL_PROFILE, ONOS_PROFILE, ControllerProfile

__all__ = [
    "Controller",
    "ControllerCluster",
    "ControllerProfile",
    "HaMode",
    "NetworkMessageRecord",
    "ODL_PROFILE",
    "ONOS_PROFILE",
    "OdlController",
    "OnosController",
    "Taint",
    "TriggerContext",
]
