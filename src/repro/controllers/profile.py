"""Controller timing profiles.

Every latency constant that distinguishes ONOS from ODL lives here, so the
calibration targets in DESIGN.md trace to one place. Values are simulated
milliseconds, chosen to reproduce the paper's *shapes*:

* ONOS pipeline capacity ~7.5K PACKET_IN/s, FLOW_MOD saturation ~5K/s
  (Fig 4f); detection 95th-percentiles ≈97 ms (k=6, m=0) and ≈129 ms
  (k=6, m=2) at ~5.5K PACKET_IN/s (Fig 4a).
* ODL pipeline capacity ~800 FLOW_MOD/s at n=1 collapsing to ~140/s at n=7
  via Infinispan's synchronous write cost (Fig 4g); detection ≈500/700 ms
  (Fig 4c).

The long-tailed ``jitter`` term models JVM response-time tails (GC pauses,
lock contention) on the response-reporting path; its median scales with
pipeline utilization, which is what makes detection time grow with the
PACKET_IN rate (Fig 4b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.latency import Fixed, LatencyModel, LogNormal, Uniform


@dataclass
class ControllerProfile:
    """Timing and behaviour knobs for one controller implementation."""

    name: str
    store: str  # "hazelcast" or "infinispan"
    #: Per-PACKET_IN processing time in the controller pipeline.
    pipeline_service: LatencyModel = field(default_factory=lambda: Fixed(0.1))
    #: Pipeline queue slots; arrivals beyond this are dropped (TCAM-miss loss).
    pipeline_capacity: int = 2000
    #: FLOW_MOD egress (OpenFlow plugin) per-message cost.
    egress_service: LatencyModel = field(default_factory=lambda: Fixed(0.02))
    #: JVM response-tail jitter: median (ms) and log-normal sigma.
    jitter_median_ms: float = 5.0
    jitter_sigma: float = 1.0
    #: How strongly utilization inflates the jitter median.
    jitter_load_factor: float = 2.5
    #: Mean pipeline service time, for the utilization estimator.
    service_mean_ms: float = 0.14
    #: Switch/proxy <-> controller control-channel latency.
    control_latency: LatencyModel = field(default_factory=lambda: Uniform(0.2, 0.6))
    #: True for destination-based proactive forwarding (vanilla ODL).
    proactive: bool = False
    #: LLDP topology-probe period.
    lldp_period_ms: float = 1000.0
    #: Delay before the flow-reconciliation check (PENDING_ADD -> ADDED).
    flow_reconcile_delay_ms: float = 50.0
    #: Backlog beyond which the pipeline collapses (Cbench experiment only).
    collapse_threshold: Optional[int] = None
    #: Whether replicated PACKET_INs arrive encapsulated (ODL OVS mode).
    replication_encapsulated: bool = False


def onos_profile(**overrides) -> ControllerProfile:
    """The ONOS v1.0.0 model (eventually consistent, reactive)."""
    profile = ControllerProfile(
        name="onos",
        store="hazelcast",
        pipeline_service=LogNormal(median=0.11, sigma=0.7),
        pipeline_capacity=3000,
        egress_service=Fixed(0.015),
        jitter_median_ms=4.5,
        jitter_sigma=1.0,
        jitter_load_factor=1.0,
        service_mean_ms=0.14,
        control_latency=Uniform(0.2, 0.6),
        proactive=False,
        replication_encapsulated=False,
    )
    for key, value in overrides.items():
        setattr(profile, key, value)
    return profile


def odl_profile(**overrides) -> ControllerProfile:
    """The OpenDaylight Hydrogen model (strongly consistent).

    Vanilla ODL is proactive; the paper's experiments run it with JURY's
    custom *reactive* forwarding module (§VI-C, footnote 3), which is the
    default here too — pass ``proactive=True`` for the stock behaviour.
    """
    profile = ControllerProfile(
        name="odl",
        store="infinispan",
        pipeline_service=LogNormal(median=0.28, sigma=0.5),
        pipeline_capacity=3000,
        egress_service=Fixed(0.05),
        jitter_median_ms=22.0,
        jitter_sigma=1.1,
        jitter_load_factor=1.0,
        service_mean_ms=0.31,
        control_latency=Uniform(0.3, 0.8),
        proactive=False,
        replication_encapsulated=True,
        # ODL has no ONOS-style PENDING_ADD reconciliation sweep; flow
        # programming status is tracked in MD-SAL itself.
        flow_reconcile_delay_ms=0.0,
    )
    for key, value in overrides.items():
        setattr(profile, key, value)
    return profile


# Shared default instances (treat as read-only; use the factories to tweak).
ONOS_PROFILE = onos_profile()
ODL_PROFILE = odl_profile()
