"""Trigger contexts and taint tags threaded through controller processing.

JURY's action attribution (§IV-B) rests on knowing, for every side-effect a
controller produces, *which trigger* caused it. Controllers thread a
:class:`TriggerContext` through their processing pipeline; JURY's controller
module reads it at every interception point.

A :class:`Taint` marks a *replicated* trigger at a secondary controller: the
taint identifies the original trigger and the primary that received it, and
it propagates to every response the secondary elicits. Tainted processing is
*shadow* processing — side-effects are captured for the validator and
dropped (§IV-B "JURY does not induce any cache/network side-effects due to
processing of triggers by secondary controllers").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

TriggerId = Tuple  # ("ext", n) for external triggers, ("int", origin, n) internal

_external_ids = itertools.count(1)
_internal_ids = itertools.count(1)


def new_external_trigger_id() -> TriggerId:
    """Allocate a fresh external trigger id (used by JURY's replicator)."""
    return ("ext", next(_external_ids))


def snapshot_trigger_ids() -> Tuple[int, int]:
    """Next (external, internal) trigger-id values, without consuming them.

    ``itertools.count`` has no peek, so this burns one value from each
    counter and re-creates it at the same position — safe because the
    counters are only ever read through the ``new_*`` helpers, and callers
    only snapshot at a quiescent point (checkpoint time).
    """
    global _external_ids, _internal_ids
    ext = next(_external_ids)
    internal = next(_internal_ids)
    _external_ids = itertools.count(ext)
    _internal_ids = itertools.count(internal)
    return (ext, internal)


def restore_trigger_ids(positions: Tuple[int, int]) -> None:
    """Re-seed both process-global counters from a snapshot.

    The recovery counterpart of :func:`snapshot_trigger_ids`: a restored
    engine continues allocating trigger ids exactly where the checkpointed
    process stopped, so replayed and fresh triggers never collide.
    """
    global _external_ids, _internal_ids
    ext, internal = positions
    _external_ids = itertools.count(int(ext))
    _internal_ids = itertools.count(int(internal))


def reset_trigger_ids() -> None:
    """Restart both process-global trigger-id counters from 1.

    Trigger ids are process-global so that concurrent experiments never
    collide — but that also makes a scenario's alarm stream depend on how
    many triggers earlier runs in the same process consumed. The fuzzer
    (and any other rig that needs position-independent, byte-comparable
    runs) calls this between *isolated* experiments; never call it while
    an experiment is still live.
    """
    global _external_ids, _internal_ids
    _external_ids = itertools.count(1)
    _internal_ids = itertools.count(1)


@dataclass(frozen=True)
class Taint:
    """The mark carried by a replicated trigger and its responses."""

    trigger_id: TriggerId
    primary_id: str

    def __str__(self) -> str:
        return f"taint({self.trigger_id}@{self.primary_id})"


@dataclass
class TriggerContext:
    """Per-trigger processing context.

    ``shadow`` is True for replicated execution at a secondary: all cache and
    network side-effects are captured into ``captured_cache`` /
    ``captured_network`` instead of being performed.
    """

    trigger_id: Optional[TriggerId] = None
    taint: Optional[Taint] = None
    external: bool = True
    shadow: bool = False
    received_at: float = 0.0
    description: str = ""
    captured_cache: List[Tuple] = field(default_factory=list)
    captured_network: List[Tuple] = field(default_factory=list)
    #: Synchronous store cost accumulated during processing (ms); charged to
    #: the controller pipeline after the handler returns.
    pending_cost: float = 0.0
    #: The controller's state digest at processing start — *before* this
    #: trigger's own writes. State-aware consensus compares these, so a
    #: primary and its shadow replicas that saw the same pre-state group
    #: together even though only the primary's write actually lands.
    entry_digest: Tuple = ()
    #: Set by applications that declare their output non-deterministic
    #: (the §VIII future-work extension): the validator then skips majority
    #: comparison for this trigger instead of guessing from distinctness.
    non_deterministic: bool = False

    @property
    def tainted(self) -> bool:
        return self.taint is not None

    @classmethod
    def external_trigger(cls, received_at: float = 0.0, description: str = "",
                         trigger_id: Optional[TriggerId] = None) -> "TriggerContext":
        """Context for an external (southbound/northbound) trigger.

        ``trigger_id`` is supplied when JURY's replicator already assigned
        τ at interception time; otherwise a fresh id is allocated.
        """
        return cls(
            trigger_id=trigger_id if trigger_id is not None
            else new_external_trigger_id(),
            external=True,
            received_at=received_at,
            description=description,
        )

    @classmethod
    def internal_trigger(cls, controller_id: str, received_at: float = 0.0,
                         description: str = "") -> "TriggerContext":
        """Fresh context for an internal (proactive/administrative) trigger."""
        return cls(
            trigger_id=("int", controller_id, next(_internal_ids)),
            external=False,
            received_at=received_at,
            description=description,
        )

    @classmethod
    def replica_of(cls, taint: Taint, received_at: float = 0.0,
                   description: str = "") -> "TriggerContext":
        """Shadow context for replicated execution at a secondary."""
        return cls(
            trigger_id=taint.trigger_id,
            taint=taint,
            external=True,
            shadow=True,
            received_at=received_at,
            description=description,
        )

    def capture_cache(self, canonical: Tuple) -> None:
        """Record a suppressed cache write (shadow mode)."""
        self.captured_cache.append(canonical)

    def capture_network(self, canonical: Tuple) -> None:
        """Record a suppressed network write (shadow mode)."""
        self.captured_network.append(canonical)

    def combined_canonical(self) -> Tuple:
        """Canonical (cache, network) bundle for replica-result responses."""
        return (tuple(sorted(self.captured_cache, key=repr)),
                tuple(sorted(self.captured_network, key=repr)))
