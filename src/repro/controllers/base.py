"""Controller replica base class.

A :class:`Controller` models one node of an SDN controller cluster:

* a **southbound** interface receiving OpenFlow messages from switches via
  per-switch OVS proxies (handshake, PACKET_IN ingestion);
* a bounded **processing pipeline** (:class:`~repro.sim.station.ServiceStation`)
  whose saturation behaviour drives the paper's throughput figures;
* a **FLOW_MOD egress queue** modeling ODL's MD-SAL → OpenFlow-plugin path,
  where the FLOW_MOD-drop fault lives;
* **controller-wide cache** access with trigger attribution (every write
  carries the trigger id ``tau``), the externalization JURY validates;
* **JURY interception hooks**: taps on outgoing network messages and cache
  writes, shadow-mode side-effect suppression, and replicated-trigger
  injection.

Applications (forwarding, topology discovery, host tracking) plug in via
:class:`ControllerApp` and thread a
:class:`~repro.controllers.context.TriggerContext` through everything they do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.datastore.caches import SWITCHESDB, switch_key, switch_value
from repro.datastore.events import CacheEvent, CacheOp, cache_canonical
from repro.datastore.store import DatastoreNode
from repro.errors import CacheLockError
from repro.net.channel import ControlChannel
from repro.openflow.messages import (
    EchoReply,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    RestRequest,
)
from repro.controllers.context import TriggerContext
from repro.controllers.profile import ControllerProfile
from repro.sim.simulator import Simulator
from repro.sim.station import ServiceStation


@dataclass
class NetworkMessageRecord:
    """One outgoing network message, as seen by JURY's interception tap."""

    controller_id: str
    message: Any
    tau: Optional[Tuple]
    time: float
    #: State digest of the emitting trigger's context at processing start.
    ctx_digest: Tuple = ()


class ControllerApp:
    """Base class for controller applications.

    Handlers return ``True`` when they consumed the trigger, stopping the
    dispatch chain (mirrors ONOS/ODL packet-processor chains).
    """

    name = "app"

    def __init__(self, controller: "Controller"):
        self.controller = controller

    def start(self) -> None:
        """Called once when the cluster starts; schedule periodic work here."""

    def handle_packet_in(self, message: PacketIn, ctx: TriggerContext) -> bool:
        """Process a PACKET_IN; return True if consumed."""
        return False

    def handle_rest(self, request: RestRequest, ctx: TriggerContext) -> bool:
        """Process a northbound request; return True if consumed."""
        return False

    def on_cache_event(self, event: CacheEvent) -> None:
        """Observe a cache event visible at this node."""


class Controller:
    """One controller replica in an HA cluster."""

    def __init__(
        self,
        sim: Simulator,
        controller_id: str,
        store_node: DatastoreNode,
        profile: ControllerProfile,
        election_id: Optional[int] = None,
    ):
        self.sim = sim
        self.id = controller_id
        self.store = store_node
        self.profile = profile
        # Election id used by mastership/liveness algorithms; reboots can
        # change it (the ONOS master-election fault scenario).
        self.election_id = election_id if election_id is not None else _numeric_suffix(controller_id)
        self.cluster = None  # set by ControllerCluster.add_controller
        self.apps: List[ControllerApp] = []
        self.alive = True
        self._rng = sim.fork_rng(f"controller/{controller_id}")

        self.pipeline = ServiceStation(
            sim,
            profile.pipeline_service,
            capacity=profile.pipeline_capacity,
            collapse_threshold=profile.collapse_threshold,
            name=f"{controller_id}/pipeline",
        )
        self.egress = ServiceStation(
            sim, profile.egress_service, name=f"{controller_id}/egress")
        #: Probability an egress FLOW_MOD is silently lost (fault injectable:
        #: the ODL MD-SAL -> OpenFlow-plugin drop).
        self.egress_drop_prob = 0.0

        self._switch_channels: Dict[int, ControlChannel] = {}
        # Keyed by the channel's stable uid, never id(channel): id() values
        # are process addresses, reusable after GC and different on every
        # replica — a divergence source the D103 analysis rule forbids.
        self._channel_dpid: Dict[str, int] = {}  # channel.uid -> dpid
        self._handshook: set = set()  # channel.uid we sent FEATURES_REQUEST on
        self.connected_switches: set = set()

        # Recent PACKET_IN arrival times for the utilization estimator.
        self._arrivals: deque = deque(maxlen=256)

        # JURY interception hooks (None in vanilla clusters).
        self.network_tap: Optional[Callable[[NetworkMessageRecord], None]] = None
        self.trigger_done_hook: Optional[Callable[[TriggerContext], None]] = None
        #: Called when a FLOW_MOD enters the (possibly slow) egress path, so
        #: JURY can hold the trigger's network bundle open until it emerges.
        self.network_promise_hook: Optional[Callable[[Tuple], None]] = None
        self.jury_module = None  # set by repro.core.module.JuryModule

        # Counters.
        self.packet_ins_received = 0
        self.packet_ins_dropped = 0
        self.flow_mods_sent = 0
        self.flow_mods_dropped_egress = 0
        self.packet_outs_sent = 0
        self.rest_requests = 0

        self.store.add_listener(self._on_store_event)

    # ------------------------------------------------------------------
    # Identity and mastership
    # ------------------------------------------------------------------
    def app(self, name: str) -> Optional[ControllerApp]:
        """Look up an installed application by its ``name`` attribute."""
        for candidate in self.apps:
            if candidate.name == name:
                return candidate
        return None

    def effective_id(self, ctx: TriggerContext) -> str:
        """The identity application logic should act as.

        Shadow (replicated) execution impersonates the primary so that "all
        triggers follow the exact same control sequence in the secondary
        controllers" (§IV, feature 1): mastership and role checks resolve as
        they would at the primary.
        """
        if ctx.shadow and ctx.taint is not None:
            return ctx.taint.primary_id
        return self.id

    def is_master(self, dpid: int, ctx: Optional[TriggerContext] = None) -> bool:
        """Mastership check from the effective identity's standpoint."""
        if self.cluster is None:
            return True
        acting = self.effective_id(ctx) if ctx is not None else self.id
        return self.cluster.master_of(dpid) == acting

    # ------------------------------------------------------------------
    # Southbound wiring
    # ------------------------------------------------------------------
    def attach_switch_channel(self, channel: ControlChannel) -> None:
        """Begin the OpenFlow handshake over a fresh control channel."""
        self._handshook.add(channel.uid)
        channel.send(self, Hello())
        channel.send(self, FeaturesRequest())

    def handle_control_message(self, channel: ControlChannel, message: Any) -> None:
        """Southbound dispatch (switch -> controller direction)."""
        if not self.alive:
            return
        if getattr(message, "is_replicated_trigger", False):
            module = getattr(self, "jury_module", None)
            if module is not None:
                module.on_replicated_trigger(message)
            return
        if isinstance(message, Hello):
            return
        if isinstance(message, FeaturesReply):
            self._handle_features_reply(channel, message)
        elif isinstance(message, PacketIn):
            self.ingress_packet_in(message)
        elif isinstance(message, EchoReply):
            return

    def _handle_features_reply(self, channel: ControlChannel, message: FeaturesReply) -> None:
        """Switch connect: register the channel, write the shared cache.

        The SwitchesDB write is where the ONOS database-locking fault fires:
        the primary fails to obtain the lock, omits its response, and JURY's
        validator times the trigger out (§VII-A1).
        """
        if channel.uid not in self._handshook:
            return  # broadcast reply on a channel we never handshook on
        dpid = message.dpid
        if dpid in self.connected_switches:
            return  # duplicate reply (one per controller's FEATURES_REQUEST)
        self._switch_channels[dpid] = channel
        self._channel_dpid[channel.uid] = dpid
        ctx = TriggerContext.external_trigger(
            received_at=self.sim.now, description=f"switch-connect s{dpid}",
            trigger_id=getattr(message, "jury_tau", None))
        ctx.entry_digest = self.state_digest()
        if self.cluster is not None and self.cluster.master_of(dpid) != self.id:
            # Non-masters track the channel but the master owns the cache write.
            self.connected_switches.add(dpid)
            return
        try:
            self.cache_write(
                SWITCHESDB, switch_key(dpid),
                switch_value(dpid, message.ports, master=self.id), ctx=ctx)
        except CacheLockError:
            # "Failed to obtain lock": the connect is rejected and nothing
            # is externalized — a response omission JURY detects by timeout.
            return
        self.connected_switches.add(dpid)
        self._finish_trigger(ctx)

    def shadow_switch_connect(self, message: FeaturesReply,
                              ctx: TriggerContext) -> None:
        """Replicated FEATURES_REPLY processing at a secondary (shadow).

        Mirrors the primary's connect handling — the shared-cache switch
        write — with side-effects captured. Secondaries do not lock the
        cache (JURY prevents any side-effects of replicated execution), so
        the database-locking fault cannot recur here (§VII-A1).
        """
        dpid = message.dpid
        ctx.entry_digest = self.state_digest()
        master = self.cluster.master_of(dpid) if self.cluster is not None else None
        acting = self.effective_id(ctx)
        if master is not None and master != acting:
            self._finish_trigger(ctx)
            return
        self.cache_write(
            SWITCHESDB, switch_key(dpid),
            switch_value(dpid, message.ports, master=acting), ctx=ctx)
        self._finish_trigger(ctx)

    def channel_for(self, dpid: int) -> Optional[ControlChannel]:
        """The control channel toward switch ``dpid`` (via its proxy)."""
        return self._switch_channels.get(dpid)

    # ------------------------------------------------------------------
    # Trigger ingestion
    # ------------------------------------------------------------------
    def ingress_packet_in(self, message: PacketIn,
                          ctx: Optional[TriggerContext] = None) -> None:
        """Admit a PACKET_IN into the processing pipeline.

        ``ctx`` is supplied by JURY when injecting a replicated (tainted)
        trigger; southbound arrivals get a fresh external context.
        """
        if not self.alive:
            return
        self.packet_ins_received += 1
        self._arrivals.append(self.sim.now)
        if ctx is None:
            ctx = TriggerContext.external_trigger(
                received_at=self.sim.now,
                description=f"packet_in s{message.dpid}",
                trigger_id=getattr(message, "jury_tau", None))
        accepted = self.pipeline.submit(
            (message, ctx), self._pipeline_packet_in)
        if not accepted:
            self.packet_ins_dropped += 1

    def ingress_rest(self, request: RestRequest,
                     ctx: Optional[TriggerContext] = None) -> None:
        """Admit a northbound REST request (external trigger)."""
        if not self.alive:
            return
        self.rest_requests += 1
        if ctx is None:
            ctx = TriggerContext.external_trigger(
                received_at=self.sim.now, description=f"rest {request.operation}",
                trigger_id=getattr(request, "jury_tau", None))
        accepted = self.pipeline.submit((request, ctx), self._pipeline_rest)
        if not accepted:
            self.packet_ins_dropped += 1

    def run_internal(self, description: str,
                     action: Callable[[TriggerContext], None]) -> TriggerContext:
        """Run a proactive/administrative action as an internal trigger.

        This is the entry point for admin log-ins and truly proactive
        modules (§II-A2) — and therefore for T2/T3 fault injection.
        """
        ctx = TriggerContext.internal_trigger(
            self.id, received_at=self.sim.now, description=description)
        ctx.entry_digest = self.state_digest()
        action(ctx)
        self._finish_trigger(ctx)
        return ctx

    # ------------------------------------------------------------------
    # Pipeline bodies
    # ------------------------------------------------------------------
    def _pipeline_packet_in(self, work) -> float:
        message, ctx = work
        ctx.entry_digest = self.state_digest()
        cost_before = getattr(ctx, "pending_cost", 0.0)
        try:
            for app in self.apps:
                if app.handle_packet_in(message, ctx):
                    break
        except CacheLockError:  # jury: ignore[H403] — omission is the modeled fault
            pass  # omitted response; JURY times the trigger out
        self._finish_trigger(ctx)
        return getattr(ctx, "pending_cost", 0.0) - cost_before

    def _pipeline_rest(self, work) -> float:
        request, ctx = work
        ctx.entry_digest = self.state_digest()
        cost_before = getattr(ctx, "pending_cost", 0.0)
        try:
            for app in self.apps:
                if app.handle_rest(request, ctx):
                    break
        except CacheLockError:  # jury: ignore[H403] — omission is the modeled fault
            pass
        self._finish_trigger(ctx)
        return getattr(ctx, "pending_cost", 0.0) - cost_before

    def _finish_trigger(self, ctx: TriggerContext) -> None:
        if self.trigger_done_hook is not None:
            self.trigger_done_hook(ctx)

    # ------------------------------------------------------------------
    # Side-effects: cache writes and network messages
    # ------------------------------------------------------------------
    def cache_write(self, cache: str, key: Any, value: Any,
                    ctx: TriggerContext, op: Optional[CacheOp] = None) -> None:
        """Write a controller-wide cache entry attributed to ``ctx``.

        In shadow mode the write is captured and suppressed; otherwise the
        synchronous store cost is accumulated on the context so the pipeline
        stays busy for it (how Infinispan throttles ODL).
        """
        if ctx.shadow:
            effective_op = op
            if effective_op is None:
                existing = self.store.get(cache, key)
                effective_op = CacheOp.UPDATE if existing is not None else CacheOp.CREATE
            ctx.capture_cache(cache_canonical(cache, key, effective_op, value))
            return
        result = self.store.put(cache, key, value, op=op, tau=ctx.trigger_id,
                                ctx_digest=getattr(ctx, "entry_digest", ()))
        ctx.pending_cost = getattr(ctx, "pending_cost", 0.0) + result.cost_ms

    def cache_delete(self, cache: str, key: Any, ctx: TriggerContext) -> None:
        """Delete a cache entry attributed to ``ctx`` (shadow-aware)."""
        if ctx.shadow:
            ctx.capture_cache(cache_canonical(cache, key, CacheOp.DELETE, None))
            return
        result = self.store.delete(cache, key, tau=ctx.trigger_id,
                                   ctx_digest=getattr(ctx, "entry_digest", ()))
        ctx.pending_cost = getattr(ctx, "pending_cost", 0.0) + result.cost_ms

    def send_flow_mod(self, message: FlowMod, ctx: TriggerContext) -> None:
        """Queue a FLOW_MOD through the egress path (shadow-aware).

        On Hazelcast-backed controllers the rule is first backed up through
        the cluster-shared flow-backup stage, which is what caps cluster-wide
        FLOW_MOD throughput (~5K/s) independent of cluster size (Fig 4f).
        """
        if ctx.shadow:
            ctx.capture_network(message.canonical())
            return
        if self.network_promise_hook is not None:
            self.network_promise_hook(ctx.trigger_id)
        backup_factory = getattr(self.store.cluster, "flow_backup_station", None)
        if backup_factory is not None:
            backup_factory().submit((message, ctx), self._after_flow_backup)
            return
        self.egress.submit((message, ctx), self._egress_send)

    def _after_flow_backup(self, work) -> None:
        self.egress.submit(work, self._egress_send)

    def send_packet_out(self, message: PacketOut, ctx: TriggerContext) -> None:
        """Send a PACKET_OUT directly (bypasses the FLOW_MOD egress queue).

        PACKET_OUT throughput is far higher than FLOW_MOD throughput and
        unaffected by clustering (§VII-B.1) because it skips the flow
        subsystem entirely.
        """
        if ctx.shadow:
            ctx.capture_network(message.canonical())
            return
        self.packet_outs_sent += 1
        self._transmit(message, ctx)

    def _egress_send(self, work) -> None:
        message, ctx = work
        if self._rng.random() < self.egress_drop_prob:
            # The ODL FLOW_MOD-drop fault: MD-SAL accepted the write but the
            # egress call toward the network is lost (§III-B, T2).
            self.flow_mods_dropped_egress += 1
            return
        self.flow_mods_sent += 1
        self._transmit(message, ctx)

    def _transmit(self, message: OpenFlowMessage, ctx: TriggerContext) -> None:
        message.tau = ctx.trigger_id  # attribution metadata for interception
        if self.network_tap is not None:
            self.network_tap(NetworkMessageRecord(
                controller_id=self.id, message=message,
                tau=ctx.trigger_id, time=self.sim.now,
                ctx_digest=getattr(ctx, "entry_digest", ())))
        dpid = getattr(message, "dpid", None)
        channel = self._switch_channels.get(dpid) if dpid is not None else None
        if channel is not None:
            channel.send(self, message)

    # ------------------------------------------------------------------
    # Store events
    # ------------------------------------------------------------------
    def _on_store_event(self, node: DatastoreNode, event: CacheEvent) -> None:
        if not self.alive:
            return
        for app in self.apps:
            app.on_cache_event(event)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Estimated pipeline utilization from recent arrivals.

        Drives the load-dependent response-jitter term (detection time grows
        with PACKET_IN rate, Fig 4b).
        """
        if len(self._arrivals) < 2:
            return 0.0
        window = self.sim.now - self._arrivals[0]
        if window <= 0:
            return 1.0
        rate = len(self._arrivals) / window  # arrivals per ms
        return min(1.0, rate * self.profile.service_mean_ms)

    def state_digest(self) -> tuple:
        """This replica's network-view digest (see DatastoreNode.state_digest)."""
        return self.store.state_digest()

    def crash(self) -> None:
        """Fail-stop: the controller ceases all processing."""
        self.alive = False

    def reboot(self, election_id: Optional[int] = None) -> None:
        """Restart after a crash, optionally with a new election id.

        A reboot that *lowers* the election id is the trigger condition of
        the ONOS master-election fault (§III-B).
        """
        self.alive = True
        if election_id is not None:
            self.election_id = election_id
            if self.cluster is not None:
                self.cluster.announce_election_id(self.id, election_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Controller({self.id!r}, {self.profile.name}, alive={self.alive})"


def _numeric_suffix(controller_id: str) -> int:
    digits = "".join(ch for ch in controller_id if ch.isdigit())
    return int(digits) if digits else 0
