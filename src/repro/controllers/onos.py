"""ONOS-like controller replica.

Eventually consistent (Hazelcast-like store), reactive src-dst forwarding,
LLDP topology discovery, host tracking. Factory helpers build a full n-node
cluster in the paper's ``ANY_CONTROLLER_ONE_MASTER`` configuration.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.controllers.apps.forwarding import ReactiveForwarding
from repro.controllers.apps.hosttracker import HostTracker
from repro.controllers.apps.topology import TopologyApp
from repro.controllers.base import Controller
from repro.controllers.cluster import ControllerCluster, HaMode
from repro.controllers.profile import ControllerProfile, onos_profile
from repro.datastore.hazelcast import HazelcastCluster
from repro.net.channel import ByteCounter
from repro.sim.simulator import Simulator


class OnosController(Controller):
    """One ONOS replica with the standard application stack."""

    def __init__(self, sim: Simulator, controller_id: str, store_node,
                 profile: Optional[ControllerProfile] = None,
                 election_id: Optional[int] = None):
        super().__init__(sim, controller_id, store_node,
                         profile or onos_profile(), election_id=election_id)
        self.apps = [
            TopologyApp(self),
            HostTracker(self),
            ReactiveForwarding(self),
        ]


def build_onos_cluster(
    sim: Simulator,
    n: int = 7,
    profile: Optional[ControllerProfile] = None,
    store_counter: Optional[ByteCounter] = None,
) -> Tuple[ControllerCluster, HazelcastCluster]:
    """Build an n-node ONOS cluster (controllers ``c1``..``cn``).

    Returns the controller cluster and its Hazelcast store (whose byte
    counter feeds the inter-controller-traffic results).
    """
    store = HazelcastCluster(sim, counter=store_counter)
    cluster = ControllerCluster(sim, ha_mode=HaMode.ANY_CONTROLLER_ONE_MASTER,
                                name="onos")
    for i in range(1, n + 1):
        controller_id = f"c{i}"
        node = store.create_node(controller_id)
        node_profile = dataclasses.replace(profile) if profile is not None else None
        controller = OnosController(sim, controller_id, node, profile=node_profile)
        cluster.add_controller(controller)
    return cluster, store
