"""Controller applications: topology discovery, host tracking, forwarding."""

from repro.controllers.apps.forwarding import ReactiveForwarding
from repro.controllers.apps.hosttracker import HostTracker
from repro.controllers.apps.proactive import ProactiveForwarding
from repro.controllers.apps.topology import TopologyApp

__all__ = [
    "HostTracker",
    "ProactiveForwarding",
    "ReactiveForwarding",
    "TopologyApp",
]
