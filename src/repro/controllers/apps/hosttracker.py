"""Host tracking and ARP handling.

ARP PACKET_INs are how controllers discover hosts: the tracker learns the
source host's location, writes it to HostsDB (one cache write per discovery,
the trigger's externalization), and then either proxies the ARP toward a
known target or floods it along a loop-free spanning tree.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.controllers.base import ControllerApp
from repro.controllers.context import TriggerContext
from repro.datastore.caches import HOSTSDB, host_key, host_value
from repro.net.packet import Packet
from repro.openflow.actions import ActionOutput
from repro.openflow.messages import PacketIn, PacketOut


class HostTracker(ControllerApp):
    """Learns host locations from ARP traffic and answers/floods ARPs."""

    name = "hosttracker"

    def handle_packet_in(self, message: PacketIn, ctx: TriggerContext) -> bool:
        packet = message.packet
        if packet is None or not packet.is_arp:
            return False
        self._learn(packet, message.dpid, message.in_port, ctx)
        if packet.is_broadcast:
            self._resolve_or_flood(message, ctx)
        else:
            self._forward_unicast_arp(message, ctx)
        return True

    # ------------------------------------------------------------------
    def _learn(self, packet: Packet, dpid: int, port: int, ctx: TriggerContext) -> None:
        if self._is_fabric_port(dpid, port):
            return  # flooded copy arriving over the fabric, not an edge port
        key = host_key(packet.src_mac)
        value = host_value(packet.src_mac, packet.src_ip, dpid, port)
        if self.controller.store.get(HOSTSDB, key) == value:
            return  # unchanged; re-ARPs do not rewrite the cache
        self.controller.cache_write(HOSTSDB, key, value, ctx=ctx)

    def _is_fabric_port(self, dpid: int, port: int) -> bool:
        """True if (dpid, port) is a known switch-to-switch link endpoint."""
        topology = self.controller.app("topology")
        if topology is None:
            return False
        graph = topology.topology_graph()
        if dpid not in graph:
            return False
        for neighbor in graph.neighbors(dpid):
            if graph[dpid][neighbor]["ports"].get(dpid) == port:
                return True
        return False

    def lookup_by_ip(self, ip: str) -> Optional[dict]:
        """Find a host entry by IP (linear scan of the local replica)."""
        for value in self.controller.store.entries(HOSTSDB).values():
            if value and value.get("ip") == ip:
                return value
        return None

    def lookup_by_mac(self, mac: str) -> Optional[dict]:
        """Find a host entry by MAC."""
        return self.controller.store.get(HOSTSDB, host_key(mac))

    # ------------------------------------------------------------------
    def _resolve_or_flood(self, message: PacketIn, ctx: TriggerContext) -> None:
        packet = message.packet
        target = self.lookup_by_ip(packet.dst_ip)
        if target is not None:
            # Deliver the request at the target's attachment point; the
            # target's unicast reply hops back via _forward_unicast_arp.
            self.controller.send_packet_out(PacketOut(
                dpid=target["dpid"], packet=packet, in_port=message.in_port,
                actions=(ActionOutput(target["port"]),)), ctx)
            # Release (discard) the buffered original at the ingress switch.
            self.controller.send_packet_out(PacketOut(
                dpid=message.dpid, buffer_id=message.buffer_id,
                in_port=message.in_port, actions=()), ctx)
            return
        self._flood(message, ctx)

    def _forward_unicast_arp(self, message: PacketIn, ctx: TriggerContext) -> None:
        packet = message.packet
        destination = self.lookup_by_mac(packet.dst_mac)
        if destination is None:
            self._flood(message, ctx)
            return
        out_port = self._port_toward(message.dpid, destination, ctx)
        if out_port is None:
            self._flood(message, ctx)
            return
        self.controller.send_packet_out(PacketOut(
            dpid=message.dpid, buffer_id=message.buffer_id,
            in_port=message.in_port, actions=(ActionOutput(out_port),)), ctx)

    def _port_toward(self, dpid: int, destination: dict,
                     ctx: TriggerContext) -> Optional[int]:
        if destination["dpid"] == dpid:
            return destination["port"]
        topology = self.controller.app("topology")
        if topology is None:
            return None
        return topology.next_hop_port(dpid, destination["dpid"])

    def _flood(self, message: PacketIn, ctx: TriggerContext) -> None:
        """Flood along the spanning tree plus local host ports."""
        ports = self._flood_ports(message.dpid, message.in_port)
        actions = tuple(ActionOutput(p) for p in ports)
        self.controller.send_packet_out(PacketOut(
            dpid=message.dpid, buffer_id=message.buffer_id,
            in_port=message.in_port, actions=actions), ctx)

    def _flood_ports(self, dpid: int, in_port: int) -> List[int]:
        topology = self.controller.app("topology")
        cluster = self.controller.cluster
        all_ports: Tuple[int, ...] = ()
        if cluster is not None and cluster.topology is not None:
            switch = cluster.topology.switches.get(dpid)
            if switch is not None:
                all_ports = switch.port_numbers
        # fabric_ports / tree_ports are only ever membership-tested, but the
        # construction and the final port list are kept explicitly sorted:
        # the resulting PACKET_OUT action order is part of the externalized
        # response JURY's consensus compares across replicas, so it must not
        # inherit set/adjacency iteration order (D104).
        fabric_ports = set()
        tree_ports = set()
        if topology is not None:
            graph = topology.topology_graph()
            if dpid in graph:
                for neighbor in sorted(graph.neighbors(dpid)):
                    port = graph[dpid][neighbor]["ports"].get(dpid)
                    if port is not None:
                        fabric_ports.add(port)
            tree_ports = set(topology.spanning_tree_ports(dpid))
        ports = []
        for port in sorted(all_ports):
            if port == in_port:
                continue
            if port in fabric_ports and port not in tree_ports:
                continue  # non-tree fabric port: pruned to stay loop-free
            ports.append(port)
        return ports
