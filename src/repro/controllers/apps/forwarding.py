"""Reactive source-destination forwarding (ONOS style; also the paper's
custom ODL module, §VI-C).

On a data-packet PACKET_IN the app resolves the destination host, picks the
egress port (directly attached, or the next hop on a shortest path over the
controller's EdgesDB view), writes the flow rule to FlowsDB in PENDING_ADD
state — the single cache externalization of the trigger — and, if this
controller masters the switch, emits the FLOW_MOD plus a PACKET_OUT that
releases the buffered packet. Rules for *remote* switches are installed
purely via the cache write: the remote master reacts to the replicated cache
event and emits the actual FLOW_MOD (§II-A1).

A reconciliation pass (ONOS's flow-store/switch comparison) later moves
rules from PENDING_ADD to ADDED; a persistent mismatch leaves them stranded
in PENDING_ADD (Appendix fault 4), which a JURY policy can flag.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.controllers.base import ControllerApp
from repro.controllers.context import TriggerContext
from repro.datastore.caches import FLOWSDB, flow_key, flow_value
from repro.datastore.events import CacheEvent, CacheOp
from repro.openflow.actions import ActionOutput
from repro.openflow.constants import FlowModCommand, FlowState
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, PacketIn, PacketOut, RestRequest


class ReactiveForwarding(ControllerApp):
    """Per-switch reactive src-dst flow installation."""

    name = "forwarding"

    #: Reconciliation retries before a rule is left stranded in PENDING_ADD.
    MAX_RECONCILE_ATTEMPTS = 3

    def __init__(self, controller, flow_priority: int = 100,
                 flow_idle_timeout_ms: float = 0.0):
        super().__init__(controller)
        self.flow_priority = flow_priority
        self.flow_idle_timeout_ms = flow_idle_timeout_ms
        self.flows_installed = 0
        self.floods = 0
        self.no_path = 0

    # ------------------------------------------------------------------
    # PACKET_IN path
    # ------------------------------------------------------------------
    def handle_packet_in(self, message: PacketIn, ctx: TriggerContext) -> bool:
        packet = message.packet
        if packet is None or packet.is_lldp or packet.is_arp:
            return False
        out_port = self._egress_port(message, ctx)
        if out_port is None:
            self._flood(message, ctx)
            return True
        match = Match.for_flow(packet, in_port=message.in_port)
        self.install_flow(message.dpid, match, (ActionOutput(out_port),), ctx,
                          buffer_id=message.buffer_id, in_port=message.in_port)
        return True

    def _egress_port(self, message: PacketIn, ctx: TriggerContext) -> Optional[int]:
        tracker = self.controller.app("hosttracker")
        if tracker is None:
            return None
        destination = tracker.lookup_by_mac(message.packet.dst_mac)
        if destination is None:
            return None
        if destination["dpid"] == message.dpid:
            return destination["port"]
        topology = self.controller.app("topology")
        if topology is None:
            return None
        port = topology.next_hop_port(message.dpid, destination["dpid"])
        if port is None:
            self.no_path += 1
        return port

    def _flood(self, message: PacketIn, ctx: TriggerContext) -> None:
        self.floods += 1
        tracker = self.controller.app("hosttracker")
        ports = tracker._flood_ports(message.dpid, message.in_port) if tracker else []
        self.controller.send_packet_out(PacketOut(
            dpid=message.dpid, buffer_id=message.buffer_id,
            in_port=message.in_port,
            actions=tuple(ActionOutput(p) for p in ports)), ctx)

    # ------------------------------------------------------------------
    # Flow installation (shared with the northbound path)
    # ------------------------------------------------------------------
    def install_flow(self, dpid: int, match: Match, actions: Tuple, ctx: TriggerContext,
                     buffer_id: Optional[int] = None, in_port: int = 0,
                     priority: Optional[int] = None) -> None:
        """Write the rule to FlowsDB and emit FLOW_MOD (+ PACKET_OUT) if master."""
        priority = self.flow_priority if priority is None else priority
        key = flow_key(dpid, match, priority)
        value = flow_value(dpid, match, actions, priority,
                           state=FlowState.PENDING_ADD)
        self.controller.cache_write(FLOWSDB, key, value, ctx=ctx)
        self.flows_installed += 1
        if self.controller.is_master(dpid, ctx):
            self.controller.send_flow_mod(FlowMod(
                dpid=dpid, command=FlowModCommand.ADD, match=match,
                actions=actions, priority=priority,
                idle_timeout=self.flow_idle_timeout_ms), ctx)
            if buffer_id is not None:
                self.controller.send_packet_out(PacketOut(
                    dpid=dpid, buffer_id=buffer_id, in_port=in_port,
                    actions=actions), ctx)
            self._schedule_reconcile(dpid, match, actions, priority, ctx)

    def _schedule_reconcile(self, dpid: int, match: Match, actions: Tuple,
                            priority: int, ctx: TriggerContext) -> None:
        delay = self.controller.profile.flow_reconcile_delay_ms
        if delay <= 0 or ctx.shadow:
            return
        self.controller.sim.schedule(
            delay, self._reconcile, dpid, match, actions, priority, 1)

    def _reconcile(self, dpid: int, match: Match, actions: Tuple,
                   priority: int, attempt: int) -> None:
        """ONOS flow reconciliation: compare store and switch, then promote.

        Runs as an *internal* trigger — this is the truly-proactive flow
        subsystem acting without any external stimulus.
        """
        controller = self.controller
        if not controller.alive or not controller.is_master(dpid):
            return
        key = flow_key(dpid, match, priority)
        stored = controller.store.get(FLOWSDB, key)
        if stored is None or stored.get("state") != FlowState.PENDING_ADD.value:
            return
        installed = self._switch_reports_flow(dpid, match, actions, priority)
        if installed:
            promoted = dict(stored)
            promoted["state"] = FlowState.ADDED.value
            controller.run_internal(
                f"flow-reconcile s{dpid}",
                lambda ictx: controller.cache_write(FLOWSDB, key, promoted, ctx=ictx))
            return
        # Still missing on the switch: refresh PENDING_ADD with the attempt
        # count so policies can flag persistently stranded rules.
        stranded = dict(stored)
        stranded["attempts"] = attempt
        controller.run_internal(
            f"flow-reconcile-retry s{dpid}",
            lambda ictx: controller.cache_write(FLOWSDB, key, stranded, ctx=ictx))
        if attempt < self.MAX_RECONCILE_ATTEMPTS:
            controller.sim.schedule(
                controller.profile.flow_reconcile_delay_ms,
                self._reconcile, dpid, match, actions, priority, attempt + 1)

    def _switch_reports_flow(self, dpid: int, match: Match, actions: Tuple,
                             priority: int) -> bool:
        """Model a flow-stats round: does the switch report this exact rule?"""
        from repro.openflow.actions import canonical_actions

        cluster = self.controller.cluster
        if cluster is None or cluster.topology is None:
            return False
        switch = cluster.topology.switches.get(dpid)
        if switch is None:
            return False
        entry = switch.table.find(match, priority)
        if entry is None:
            return False
        return canonical_actions(entry.actions) == canonical_actions(actions)

    # ------------------------------------------------------------------
    # Northbound path
    # ------------------------------------------------------------------
    def handle_rest(self, request: RestRequest, ctx: TriggerContext) -> bool:
        if request.operation == "add_flow":
            params = request.params
            self.install_flow(
                params["dpid"], params["match"], tuple(params["actions"]), ctx,
                priority=params.get("priority"))
            return True
        if request.operation == "delete_flow":
            params = request.params
            self.delete_flow(params["dpid"], params["match"],
                             params.get("priority", self.flow_priority), ctx)
            return True
        return False

    def delete_flow(self, dpid: int, match: Match, priority: int,
                    ctx: TriggerContext) -> None:
        """Remove a rule from FlowsDB and the switch (if master)."""
        key = flow_key(dpid, match, priority)
        self.controller.cache_delete(FLOWSDB, key, ctx=ctx)
        if self.controller.is_master(dpid, ctx):
            self.controller.send_flow_mod(FlowMod(
                dpid=dpid, command=FlowModCommand.DELETE, match=match,
                priority=priority), ctx)

    # ------------------------------------------------------------------
    # Remote-switch installation via the shared cache
    # ------------------------------------------------------------------
    def on_cache_event(self, event: CacheEvent) -> None:
        """A peer wrote a flow for a switch *we* master: emit the FLOW_MOD."""
        if event.cache != FLOWSDB or event.origin == self.controller.id:
            return
        dpid = self._dpid_of_flow_event(event)
        if dpid is None or not self.controller.is_master(dpid):
            return
        ctx = TriggerContext(
            trigger_id=event.trigger_id,
            external=event.tau is not None and event.tau[0] == "ext",
            received_at=self.controller.sim.now,
            description=f"remote-flow s{dpid}",
        )
        if event.op == CacheOp.DELETE:
            _, _, match_canonical, priority = event.key
            self.controller.send_flow_mod(FlowMod(
                dpid=dpid, command=FlowModCommand.DELETE,
                match=Match.from_canonical(match_canonical),
                priority=priority), ctx)
            return
        value = event.value
        if value.get("state") != FlowState.PENDING_ADD.value or "attempts" in value:
            return  # reconciliation updates do not re-emit
        match = Match.from_canonical(value["match"])
        actions = _actions_from_canonical(value["actions"])
        self.controller.send_flow_mod(FlowMod(
            dpid=dpid, command=FlowModCommand.ADD, match=match,
            actions=actions, priority=value["priority"]), ctx)

    @staticmethod
    def _dpid_of_flow_event(event: CacheEvent) -> Optional[int]:
        key = event.key
        if isinstance(key, tuple) and len(key) == 4 and key[0] == "flow":
            return key[1]
        return None


def _actions_from_canonical(canonicals: Tuple) -> Tuple:
    """Rebuild action objects from their canonical tuples."""
    from repro.openflow.actions import ActionDrop, ActionOutput

    actions = []
    for canonical in canonicals:
        if canonical[0] == "drop":
            actions.append(ActionDrop())
        elif canonical[0] == "output":
            actions.append(ActionOutput(canonical[1]))
    return tuple(actions)
