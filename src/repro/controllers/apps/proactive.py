"""Destination-based proactive forwarding (vanilla ODL behaviour).

"ODL proactively installs destination-based flow rules as soon as it
receives PACKET_IN messages for ARPs indicating host discovery, i.e., even
before the first traffic packet is sent" (§VI-C). On each host discovery the
app installs a ``dl_dst``-match rule toward the host on every switch this
controller masters, so subsequent data traffic never misses the TCAM — and
the controller sees no further PACKET_INs (footnote 3).

One external trigger therefore externalizes *several* cache writes; JURY's
controller module aggregates them into a single cache-update response per
replica (see :mod:`repro.core.module`).
"""

from __future__ import annotations

from repro.controllers.base import ControllerApp
from repro.controllers.context import TriggerContext
from repro.datastore.caches import FLOWSDB, HOSTSDB, flow_key, flow_value, host_key, host_value
from repro.openflow.actions import ActionOutput
from repro.openflow.constants import FlowModCommand, FlowState
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, PacketIn, PacketOut


class ProactiveForwarding(ControllerApp):
    """Installs dst-based rules for every discovered host."""

    name = "proactive"

    def __init__(self, controller, flow_priority: int = 50):
        super().__init__(controller)
        self.flow_priority = flow_priority
        self.hosts_provisioned = 0

    def handle_packet_in(self, message: PacketIn, ctx: TriggerContext) -> bool:
        packet = message.packet
        if packet is None or not packet.is_arp:
            return False
        self._learn_and_provision(message, ctx)
        self._flood(message, ctx)
        return True

    def _learn_and_provision(self, message: PacketIn, ctx: TriggerContext) -> None:
        packet = message.packet
        if self._is_fabric_port(message.dpid, message.in_port):
            return  # flooded copy over the fabric; not a host discovery
        key = host_key(packet.src_mac)
        value = host_value(packet.src_mac, packet.src_ip, message.dpid, message.in_port)
        if self.controller.store.get(HOSTSDB, key) == value:
            return  # already provisioned for this host at this location
        self.controller.cache_write(HOSTSDB, key, value, ctx=ctx)
        self.hosts_provisioned += 1
        match = Match.for_destination(packet.src_mac)
        topology = self.controller.app("topology")
        for dpid in self._governed_switches(ctx):
            if dpid == message.dpid:
                out_port = message.in_port
            elif topology is not None:
                out_port = topology.next_hop_port(dpid, message.dpid)
            else:
                out_port = None
            if out_port is None:
                continue
            actions = (ActionOutput(out_port),)
            flow_cache_key = flow_key(dpid, match, self.flow_priority)
            self.controller.cache_write(
                FLOWSDB, flow_cache_key,
                flow_value(dpid, match, actions, self.flow_priority,
                           state=FlowState.PENDING_ADD),
                ctx=ctx)
            self.controller.send_flow_mod(FlowMod(
                dpid=dpid, command=FlowModCommand.ADD, match=match,
                actions=actions, priority=self.flow_priority), ctx)

    def on_cache_event(self, event) -> None:
        """Provision this partition when a peer discovers a host.

        In the SINGLE_CONTROLLER setup each controller only sees its own
        switches' PACKET_INs; host locations reach the others through the
        shared HostsDB, and each then installs destination rules on the
        switches *it* governs (a truly proactive, internal action).
        """
        from repro.datastore.caches import HOSTSDB
        from repro.datastore.events import CacheOp

        if (event.cache != HOSTSDB or event.origin == self.controller.id
                or event.op == CacheOp.DELETE or not event.value):
            return
        host = event.value
        self.controller.run_internal(
            f"provision-host {host['mac']}",
            lambda ctx: self._install_routes_toward(host, ctx))

    def _install_routes_toward(self, host: dict, ctx: TriggerContext) -> None:
        match = Match.for_destination(host["mac"])
        topology = self.controller.app("topology")
        for dpid in self._governed_switches(ctx):
            if dpid == host["dpid"]:
                out_port = host["port"]
            elif topology is not None:
                out_port = topology.next_hop_port(dpid, host["dpid"])
            else:
                out_port = None
            if out_port is None:
                continue
            actions = (ActionOutput(out_port),)
            self.controller.cache_write(
                FLOWSDB, flow_key(dpid, match, self.flow_priority),
                flow_value(dpid, match, actions, self.flow_priority,
                           state=FlowState.PENDING_ADD),
                ctx=ctx)
            self.controller.send_flow_mod(FlowMod(
                dpid=dpid, command=FlowModCommand.ADD, match=match,
                actions=actions, priority=self.flow_priority), ctx)

    def _governed_switches(self, ctx: TriggerContext):
        """Switches the *acting* identity governs, from shared mastership.

        Shadow executions impersonate the primary, so they must provision
        the primary's switches — cluster mastership is shared state, unlike
        this replica's local ``connected_switches``.
        """
        cluster = self.controller.cluster
        acting = self.controller.effective_id(ctx)
        if cluster is None:
            return sorted(self.controller.connected_switches)
        return sorted(dpid for dpid, master in cluster.mastership.items()
                      if master == acting)

    def _is_fabric_port(self, dpid: int, port: int) -> bool:
        topology = self.controller.app("topology")
        if topology is None:
            return False
        graph = topology.topology_graph()
        if dpid not in graph:
            return False
        return any(graph[dpid][n]["ports"].get(dpid) == port
                   for n in graph.neighbors(dpid))

    def _flood(self, message: PacketIn, ctx: TriggerContext) -> None:
        tracker = self.controller.app("hosttracker")
        if tracker is not None:
            ports = tracker._flood_ports(message.dpid, message.in_port)
        else:
            ports = []
        self.controller.send_packet_out(PacketOut(
            dpid=message.dpid, buffer_id=message.buffer_id,
            in_port=message.in_port,
            actions=tuple(ActionOutput(p) for p in ports)), ctx)
