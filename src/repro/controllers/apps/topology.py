"""Topology discovery and link-liveness tracking.

Controllers discover the switch fabric with LLDP: each controller
periodically PACKET_OUTs probes on every port of the switches it masters; a
probe crossing a link arrives at the neighbour switch, misses its table, and
punts to *that* switch's master as a PACKET_IN, which learns the edge and
writes it to EdgesDB.

Link-liveness tracking reproduces the (old) ONOS algorithm behind the
master-election fault (§III-B): for a link whose endpoint switches are
governed by different controllers, the controller with the *higher election
id* is elected liveness master and is responsible for tracking and marking
the link. If the master dies and reboots with a lower id while the peers'
views of election ids desynchronize, both governing controllers can conclude
they are not responsible — and the link is incorrectly marked unusable.
Election-id views are deliberately per-controller (``known_election_ids``)
so the fault injector can desynchronize them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.controllers.base import ControllerApp
from repro.controllers.context import TriggerContext
from repro.datastore.caches import EDGESDB, edge_key, edge_value
from repro.net.packet import LldpPayload, lldp_probe
from repro.openflow.actions import ActionOutput
from repro.openflow.messages import PacketIn, PacketOut


class TopologyApp(ControllerApp):
    """LLDP-driven topology discovery and liveness tracking."""

    name = "topology"

    def __init__(self, controller, liveness_check_period_ms: float = 3000.0):
        super().__init__(controller)
        self.liveness_check_period_ms = liveness_check_period_ms
        #: Per-controller view of peers' election ids. Defaults to the
        #: cluster registry; the master-election fault injects stale values.
        self.known_election_ids: Dict[str, int] = {}
        #: Last time an LLDP probe confirmed each edge (local view).
        self.last_seen: Dict[Tuple, float] = {}
        self._started = False
        # Derived-view caches, invalidated on any EdgesDB change. Rebuilding
        # a graph per PACKET_IN would dominate runtime at high rates.
        self._graph_cache: Optional[nx.Graph] = None
        self._next_hop_cache: Dict[Tuple[int, int], Optional[int]] = {}
        self._tree_ports_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Periodic probing
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        sim = self.controller.sim
        sim.schedule(1.0, self._emit_probes)
        if self.liveness_check_period_ms > 0:
            sim.schedule(self.liveness_check_period_ms, self._liveness_check)

    def _emit_probes(self) -> None:
        controller = self.controller
        if not controller.alive:
            return
        ctx = TriggerContext.internal_trigger(
            controller.id, received_at=controller.sim.now, description="lldp-probe")
        for dpid in sorted(controller.connected_switches):
            if not controller.is_master(dpid):
                continue
            channel = controller.channel_for(dpid)
            if channel is None:
                continue
            switch = self._switch_ports(dpid)
            for port in switch:
                probe = lldp_probe(dpid, port, controller_id=controller.id)
                controller.send_packet_out(PacketOut(
                    dpid=dpid, packet=probe, actions=(ActionOutput(port),)), ctx)
        controller.sim.schedule(controller.profile.lldp_period_ms, self._emit_probes)

    def _switch_ports(self, dpid: int) -> Tuple[int, ...]:
        cluster = self.controller.cluster
        if cluster is None or cluster.topology is None:
            return ()
        switch = cluster.topology.switches.get(dpid)
        return switch.port_numbers if switch is not None else ()

    # ------------------------------------------------------------------
    # Edge learning
    # ------------------------------------------------------------------
    def handle_packet_in(self, message: PacketIn, ctx: TriggerContext) -> bool:
        packet = message.packet
        if packet is None or not packet.is_lldp:
            return False
        payload = packet.payload
        if not isinstance(payload, LldpPayload):
            return True
        src_dpid, src_port = payload.src_dpid, payload.src_port
        dst_dpid, dst_port = message.dpid, message.in_port
        key = edge_key(src_dpid, src_port, dst_dpid, dst_port)
        self.last_seen[key] = self.controller.sim.now
        if not self._is_liveness_master(src_dpid, dst_dpid, ctx):
            # Not responsible for this link's tracking; no externalization.
            return True
        value = edge_value(src_dpid, src_port, dst_dpid, dst_port, alive=True)
        existing = self.controller.store.get(EDGESDB, key)
        if existing == value:
            return True  # already known and unchanged; nothing to write
        self.controller.cache_write(EDGESDB, key, value, ctx=ctx)
        return True

    def _is_liveness_master(self, dpid_a: int, dpid_b: int,
                            ctx: TriggerContext) -> bool:
        """The (buggy) election: higher election id among governing controllers."""
        cluster = self.controller.cluster
        acting = self.controller.effective_id(ctx)
        if cluster is None:
            return True
        master_a = cluster.master_of(dpid_a)
        master_b = cluster.master_of(dpid_b)
        if master_a == master_b:
            return acting == master_a
        if acting not in (master_a, master_b):
            return False
        eid_a = self.election_id_of(master_a)
        eid_b = self.election_id_of(master_b)
        winner = master_a if eid_a >= eid_b else master_b
        return acting == winner

    def election_id_of(self, controller_id: str) -> int:
        """This controller's *belief* about a peer's election id."""
        if controller_id in self.known_election_ids:
            return self.known_election_ids[controller_id]
        cluster = self.controller.cluster
        if cluster is not None:
            return cluster.election_id_of(controller_id)
        return 0

    # ------------------------------------------------------------------
    # Liveness sweep (internal trigger)
    # ------------------------------------------------------------------
    def _liveness_check(self) -> None:
        controller = self.controller
        if not controller.alive:
            return
        stale_cutoff = controller.sim.now - 3 * controller.profile.lldp_period_ms
        for key, seen in list(self.last_seen.items()):
            if seen >= stale_cutoff:
                continue
            _, src_dpid, src_port, dst_dpid, dst_port = key
            entry = controller.store.get(EDGESDB, key)
            if entry is None or not entry.get("alive", False):
                continue
            probe_ctx = TriggerContext(trigger_id=None)  # mastership probe only
            if not self._is_liveness_master(src_dpid, dst_dpid, probe_ctx):
                continue
            controller.run_internal(
                f"link-liveness s{src_dpid}->s{dst_dpid}",
                lambda ctx, k=key, s=src_dpid, sp=src_port, d=dst_dpid, dp=dst_port:
                    controller.cache_write(
                        EDGESDB, k, edge_value(s, sp, d, dp, alive=False), ctx=ctx))
        controller.sim.schedule(self.liveness_check_period_ms, self._liveness_check)

    # ------------------------------------------------------------------
    # Topology views used by forwarding
    # ------------------------------------------------------------------
    def on_cache_event(self, event) -> None:
        if event.cache == EDGESDB:
            self._graph_cache = None
            self._next_hop_cache.clear()
            self._tree_ports_cache.clear()

    def topology_graph(self) -> nx.Graph:
        """This replica's view of the fabric, from its EdgesDB replica."""
        if self._graph_cache is not None:
            return self._graph_cache
        graph = nx.Graph()
        for key, value in self.controller.store.entries(EDGESDB).items():
            if not value or not value.get("alive", True):
                continue
            (src_dpid, src_port) = value["src"]
            (dst_dpid, dst_port) = value["dst"]
            graph.add_edge(src_dpid, dst_dpid)
            # Record the egress port for each direction on the edge data.
            graph[src_dpid][dst_dpid].setdefault("ports", {})
            graph[src_dpid][dst_dpid]["ports"][src_dpid] = src_port
            graph[src_dpid][dst_dpid]["ports"].setdefault(dst_dpid, dst_port)
            # Unique deterministic weights make the minimum spanning tree
            # unique, so every replica with the same edge *set* computes the
            # same flood tree regardless of event arrival order — shadow
            # executions must match the primary's flood ports exactly.
            low, high = sorted((src_dpid, dst_dpid))
            graph[src_dpid][dst_dpid]["weight"] = low * 1_000_000 + high
        self._graph_cache = graph
        return graph

    def next_hop_port(self, src_dpid: int, dst_dpid: int) -> Optional[int]:
        """Egress port at ``src_dpid`` on a shortest path to ``dst_dpid``."""
        cache_key = (src_dpid, dst_dpid)
        if cache_key in self._next_hop_cache:
            return self._next_hop_cache[cache_key]
        port = self._compute_next_hop(src_dpid, dst_dpid)
        self._next_hop_cache[cache_key] = port
        return port

    def _compute_next_hop(self, src_dpid: int, dst_dpid: int) -> Optional[int]:
        graph = self.topology_graph()
        if src_dpid not in graph or dst_dpid not in graph:
            return None
        try:
            # Equal-cost multipath: pick the lexicographically smallest of
            # the shortest paths so every replica with the same edge set
            # routes identically (shadow executions must match the primary).
            path = min(nx.all_shortest_paths(graph, src_dpid, dst_dpid))
        except nx.NetworkXNoPath:
            return None
        if len(path) < 2:
            return None
        edge = graph[path[0]][path[1]]
        return edge["ports"].get(src_dpid)

    def spanning_tree_ports(self, dpid: int) -> List[int]:
        """Fabric ports of ``dpid`` on a spanning tree (loop-free flooding)."""
        if dpid in self._tree_ports_cache:
            return self._tree_ports_cache[dpid]
        graph = self.topology_graph()
        ports: List[int] = []
        if dpid in graph:
            tree = nx.minimum_spanning_tree(graph)
            for neighbor in sorted(tree.neighbors(dpid)):
                port = graph[dpid][neighbor]["ports"].get(dpid)
                if port is not None:
                    ports.append(port)
        # Sorted: replicas that learned edges in a different order must
        # still flood along identical port sequences (shadow executions are
        # compared verbatim against the primary's PACKET_OUTs).
        ports.sort()
        self._tree_ports_cache[dpid] = ports
        return ports
