"""OpenDaylight-like controller replica.

Strongly consistent (Infinispan-like store whose synchronous write cost
occupies the pipeline — the cause of ODL's cluster-throughput collapse,
Fig 4g), with an MD-SAL-style egress queue where FLOW_MODs can be lost.

Vanilla ODL forwards *proactively* (destination-based rules on host
discovery); the paper's JURY prototype replaces that with a custom reactive
src-dst module (§VI-C), which is the default stack here. Pass a profile
with ``proactive=True`` for stock behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.controllers.apps.forwarding import ReactiveForwarding
from repro.controllers.apps.hosttracker import HostTracker
from repro.controllers.apps.proactive import ProactiveForwarding
from repro.controllers.apps.topology import TopologyApp
from repro.controllers.base import Controller
from repro.controllers.cluster import ControllerCluster, HaMode
from repro.controllers.profile import ControllerProfile, odl_profile
from repro.datastore.infinispan import InfinispanCluster
from repro.net.channel import ByteCounter
from repro.sim.simulator import Simulator


class OdlController(Controller):
    """One ODL replica with the paper's application stack."""

    def __init__(self, sim: Simulator, controller_id: str, store_node,
                 profile: Optional[ControllerProfile] = None,
                 election_id: Optional[int] = None):
        super().__init__(sim, controller_id, store_node,
                         profile or odl_profile(), election_id=election_id)
        if self.profile.proactive:
            self.apps = [
                TopologyApp(self),
                ProactiveForwarding(self),
                HostTracker(self),
            ]
        else:
            # The paper's custom reactive forwarding module (§VI-C).
            self.apps = [
                TopologyApp(self),
                HostTracker(self),
                ReactiveForwarding(self),
            ]


def build_odl_cluster(
    sim: Simulator,
    n: int = 7,
    profile: Optional[ControllerProfile] = None,
    store_counter: Optional[ByteCounter] = None,
) -> Tuple[ControllerCluster, InfinispanCluster]:
    """Build an n-node ODL cluster in the ``SINGLE_CONTROLLER`` setup."""
    store = InfinispanCluster(sim, counter=store_counter)
    cluster = ControllerCluster(sim, ha_mode=HaMode.SINGLE_CONTROLLER, name="odl")
    for i in range(1, n + 1):
        controller_id = f"c{i}"
        node = store.create_node(controller_id)
        node_profile = dataclasses.replace(profile) if profile is not None else None
        controller = OdlController(sim, controller_id, node, profile=node_profile)
        cluster.add_controller(controller)
    return cluster, store
