"""The public construction facade: one config in, one deployment out.

:class:`Jury` is the single entry point the redesigned API exposes::

    from repro import Jury, JuryConfig

    config = JuryConfig(k=4, timeout_ms=250.0, pipeline=4, trace=True)

    # Attach to a cluster you already assembled:
    jury = Jury.build(config, cluster=cluster)

    # ...or let JURY host the whole testbed (simulator, topology,
    # controllers, optional northbound) the way the paper's testbed does:
    exp = Jury.experiment(config)
    exp.warmup(); exp.begin_window(); exp.run(10_000)
    exp.jury.detection_times()

With ``diagnose=True`` / ``health=True`` in the config, the returned
deployment also exposes the forensics facades — ``diagnose_payload()``
(per-alarm explanations), ``health_snapshot()`` (replica scores plus SLO
status), and ``prometheus_text()`` (the full exposition document).

Everything the legacy seams offered — ``build_experiment(...)`` keyword
soup, ``JuryDeployment(cluster, k=..., ...)`` — routes through here now;
the shims were removed (PR 7) and raise immediately with the replacement
spelled out.

``config.backend`` selects the execution backend for the sharded pipeline
(``serial``, ``threads``, or ``processes`` — see
:mod:`repro.core.backends`); the deployment threads it through to the
:class:`~repro.core.pipeline.ValidationPipeline`, and ``processes``-backed
deployments should be closed (``deployment.close()``) to release the
worker processes.
"""

from __future__ import annotations

from typing import Optional

from repro.config import JuryConfig
from repro.errors import ValidationError, WorkloadError


class Jury:
    """Namespace for the config-driven construction paths."""

    @staticmethod
    def build(config: JuryConfig, cluster=None):
        """Deploy JURY per ``config`` and return the :class:`JuryDeployment`.

        With ``cluster=None`` the full testbed (simulator, topology,
        controller cluster, northbound if requested) is assembled from the
        config's hosting-shape fields; the deployment then carries an
        ``experiment`` backref for driving the simulation. With an explicit
        cluster, only JURY itself is deployed onto it.
        """
        if not isinstance(config, JuryConfig):
            raise ValidationError(
                f"Jury.build takes a JuryConfig, not {type(config).__name__}")
        if cluster is not None:
            from repro.core.deployment import JuryDeployment
            return JuryDeployment(cluster, config=config)
        if config.k is None:
            raise ValidationError(
                "config.k=None builds a vanilla cluster — use "
                "Jury.experiment(config) for that")
        experiment = Jury.experiment(config)
        deployment = experiment.jury
        deployment.experiment = experiment
        return deployment

    @staticmethod
    def experiment(config: JuryConfig):
        """Assemble the full testbed described by ``config``.

        Returns a :class:`~repro.harness.experiment.Experiment`;
        ``config.k=None`` yields a vanilla (non-JURY) cluster for baseline
        runs.
        """
        if not isinstance(config, JuryConfig):
            raise ValidationError(
                f"Jury.experiment takes a JuryConfig, not "
                f"{type(config).__name__}")
        # Local imports: the api module is importable without dragging in
        # the whole simulation stack (repro/__init__ re-exports it lazily).
        from repro.controllers.northbound import NorthboundApi
        from repro.controllers.odl import build_odl_cluster
        from repro.controllers.onos import build_onos_cluster
        from repro.controllers.profile import odl_profile, onos_profile
        from repro.core.deployment import JuryDeployment
        from repro.harness.experiment import Experiment
        from repro.net.topology import linear_topology, three_tier_topology
        from repro.sim.simulator import Simulator

        sim = Simulator(seed=config.seed)
        if config.topology == "linear":
            topo = linear_topology(sim, config.switches)
        elif config.topology == "three_tier":
            topo = three_tier_topology(sim)
        else:
            raise WorkloadError(f"unknown topology {config.topology!r}")

        overrides = config.profile_overrides_dict()
        if config.kind == "onos":
            profile = onos_profile(**overrides)
            cluster, store = build_onos_cluster(sim, n=config.n, profile=profile)
        elif config.kind == "odl":
            profile = odl_profile(**overrides)
            cluster, store = build_odl_cluster(sim, n=config.n, profile=profile)
        else:
            raise WorkloadError(f"unknown controller kind {config.kind!r}")

        cluster.connect_topology(topo)

        jury: Optional[JuryDeployment] = None
        if config.k is not None:
            jury = JuryDeployment(cluster, config=config)

        northbound = None
        if config.with_northbound:
            northbound = NorthboundApi(cluster)
            if jury is not None:
                jury.attach_northbound(northbound)

        return Experiment(sim, topo, cluster, store,
                          jury=jury, northbound=northbound)
