"""Paced connection traffic between random host pairs.

The driver targets a *cluster-wide PACKET_IN rate*: with per-switch reactive
forwarding, one fresh connection produces roughly one PACKET_IN per switch on
its path, so the connection arrival rate is the target rate divided by the
topology's mean path length. The harness reports the *measured* PACKET_IN
rate, which is what the paper's x-axes plot.

Optional churn reproduces the §VII-A controlled experiments: "random host
joins, link tear downs and flows between hosts".
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.errors import WorkloadError
from repro.net.hosts import Host
from repro.net.topology import Topology
from repro.sim.simulator import Simulator


def mean_fabric_path_length(topology: Topology) -> float:
    """Average switch-hop count between host attachment points."""
    graph = topology.switch_graph()
    if graph.number_of_nodes() <= 1:
        return 1.0
    total, pairs = 0, 0
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    for src, targets in lengths.items():
        for dst, hops in targets.items():
            if src != dst:
                total += hops + 1  # hops+1 switches on the path
                pairs += 1
    return (total / pairs) if pairs else 1.0


class TrafficDriver:
    """Poisson connection arrivals between random host pairs."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        packet_in_rate_per_s: float,
        duration_ms: float,
        seed_label: str = "traffic",
        host_join_rate_per_s: float = 0.0,
        link_churn_rate_per_s: float = 0.0,
        rate_modulator=None,
        arp_fraction: float = 0.3,
    ):
        if packet_in_rate_per_s <= 0:
            raise WorkloadError("PACKET_IN rate must be positive")
        if duration_ms <= 0:
            raise WorkloadError("duration must be positive")
        self.sim = sim
        self.topology = topology
        self.duration_ms = duration_ms
        self.host_join_rate_per_s = host_join_rate_per_s
        self.link_churn_rate_per_s = link_churn_rate_per_s
        #: Optional callable (time_ms -> multiplier) shaping the rate.
        self.rate_modulator = rate_modulator
        self._rng = sim.fork_rng(seed_label)
        if not 0.0 <= arp_fraction <= 1.0:
            raise WorkloadError(f"arp_fraction must be in [0, 1]: {arp_fraction}")
        #: Fraction of events that are ARP refreshes (single PACKET_IN, no
        #: FLOW_MOD) — reproduces the paper's ~0.7 FLOW_MOD/PACKET_IN mix.
        self.arp_fraction = arp_fraction
        path = mean_fabric_path_length(topology)
        # A connection misses at every path switch (~path PACKET_INs); an ARP
        # refresh adds the request punt plus the reply's per-hop punts.
        pins_per_event = path + arp_fraction
        self.connection_rate_per_ms = packet_in_rate_per_s / 1000.0 / pins_per_event
        self.connections_opened = 0
        self.arps_sent = 0
        self.flow_ids: List[int] = []
        self._hosts = topology.host_list()
        self._end_time: Optional[float] = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin generating traffic from the current simulated time."""
        if self._started:
            return
        self._started = True
        self._end_time = self.sim.now + self.duration_ms
        self.sim.schedule(self._next_gap(), self._open_connection)
        if self.host_join_rate_per_s > 0:
            self.sim.schedule(self._churn_gap(self.host_join_rate_per_s),
                              self._host_join)
        if self.link_churn_rate_per_s > 0:
            self.sim.schedule(self._churn_gap(self.link_churn_rate_per_s),
                              self._link_churn)

    def warmup_arp(self) -> None:
        """Each host ARPs its neighbour so controllers learn every location."""
        hosts = self._hosts
        for index, host in enumerate(hosts):
            target = hosts[(index + 1) % len(hosts)]
            self.sim.schedule(index * 2.0, host.send_arp_request, target.ip)

    # ------------------------------------------------------------------
    def _next_gap(self) -> float:
        rate = self.connection_rate_per_ms
        if self.rate_modulator is not None:
            rate *= max(1e-9, self.rate_modulator(self.sim.now))
        return self._rng.expovariate(rate)

    def _churn_gap(self, rate_per_s: float) -> float:
        return self._rng.expovariate(rate_per_s / 1000.0)

    def _open_connection(self) -> None:
        if self._end_time is None or self.sim.now >= self._end_time:
            return
        src, dst = self._rng.sample(self._hosts, 2)
        if self._rng.random() < self.arp_fraction:
            src.send_arp_request(dst.ip)
            self.arps_sent += 1
        else:
            self.flow_ids.append(src.open_connection(dst))
            self.connections_opened += 1
        self.sim.schedule(self._next_gap(), self._open_connection)

    def _host_join(self) -> None:
        """A 'new' host appears: an existing host re-ARPs (host discovery)."""
        if self._end_time is None or self.sim.now >= self._end_time:
            return
        src, dst = self._rng.sample(self._hosts, 2)
        src.send_arp_request(dst.ip)
        self.sim.schedule(self._churn_gap(self.host_join_rate_per_s),
                          self._host_join)

    def _link_churn(self) -> None:
        """Tear a random fabric link down and restore it shortly after."""
        if self._end_time is None or self.sim.now >= self._end_time:
            return
        fabric = [l for l in self.topology.links
                  if hasattr(l.node_a, "dpid") and hasattr(l.node_b, "dpid")
                  and l.up]
        if fabric:
            link = self._rng.choice(fabric)
            link.fail()
            self.sim.schedule(self._rng.uniform(50.0, 200.0), link.restore)
        self.sim.schedule(self._churn_gap(self.link_churn_rate_per_s),
                          self._link_churn)
