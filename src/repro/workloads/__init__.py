"""Workload generators reproducing the paper's traffic sources.

* :class:`~repro.workloads.traffic.TrafficDriver` — paced TCP-connection
  traffic between random host pairs with optional host joins and link
  tear-downs (the §VII-A controlled-traffic experiments).
* :class:`~repro.workloads.tcpreplay.TcpReplayDriver` — the §VII-B
  throughput workload: fresh TCP connections for a fixed window, every
  packet a TCAM miss.
* :class:`~repro.workloads.cbench.CbenchDriver` — Cbench's blocking
  PACKET_IN bursts that overwhelm the controller (Fig 4e).
* :mod:`~repro.workloads.traces` — synthetic stand-ins for the LBNL, UNIV,
  and SMIA benign traces (Fig 4d).
"""

from repro.workloads.cbench import CbenchDriver
from repro.workloads.tcpreplay import TcpReplayDriver
from repro.workloads.traces import LBNL, SMIA, UNIV, TraceProfile, TraceReplayDriver
from repro.workloads.traffic import TrafficDriver

__all__ = [
    "CbenchDriver",
    "LBNL",
    "SMIA",
    "TcpReplayDriver",
    "TraceProfile",
    "TraceReplayDriver",
    "TrafficDriver",
    "UNIV",
]
