"""tcpreplay-style throughput workload (§VII-B.1).

"We use tcpreplay to initiate new TCP connections for 10s from several
Mininet hosts simultaneously. Each TCP packet results in a TCAM miss, which
subsequently generates a PACKET_IN and elicits a FLOW_MOD."

A thin specialization of :class:`~repro.workloads.traffic.TrafficDriver`
with the 10-second window as default and no churn.
"""

from __future__ import annotations

from repro.net.topology import Topology
from repro.sim.simulator import Simulator
from repro.workloads.traffic import TrafficDriver


class TcpReplayDriver(TrafficDriver):
    """Fresh TCP connections for a fixed window; every packet misses."""

    def __init__(self, sim: Simulator, topology: Topology,
                 packet_in_rate_per_s: float, duration_ms: float = 10000.0,
                 seed_label: str = "tcpreplay"):
        super().__init__(
            sim, topology,
            packet_in_rate_per_s=packet_in_rate_per_s,
            duration_ms=duration_ms,
            seed_label=seed_label,
        )
