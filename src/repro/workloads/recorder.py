"""Control-plane record and replay (OFRewind-style troubleshooting).

The paper's related work discusses OFRewind, which records control-plane
traffic for later replay. This module provides the comparable facility for
the simulated cluster: a :class:`ControlPlaneRecorder` taps the per-switch
OVS proxies and records every southbound trigger with its timestamp; a
:class:`TraceReplayer` re-injects a recording into a (possibly different)
cluster with original timing — e.g. record a benign run once, then replay
it against a fault-injected cluster for a like-for-like comparison.

Recordings serialize through :mod:`repro.openflow.wire`, so they can be
written to disk and reloaded.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.controllers.cluster import ControllerCluster
from repro.core.responses import Response
from repro.errors import WorkloadError
from repro.openflow import wire
from repro.openflow.messages import OpenFlowMessage, PacketIn
from repro.sim.simulator import Simulator

_RECORD_HEADER = struct.Struct("!dIH")  # time_ms, dpid, frame length


@dataclass
class RecordedTrigger:
    """One intercepted southbound message with its arrival time."""

    time_ms: float
    dpid: int
    message: OpenFlowMessage


class ControlPlaneRecorder:
    """Taps every OVS proxy of a cluster and records PACKET_INs."""

    def __init__(self, cluster: ControllerCluster,
                 include_handshakes: bool = False):
        self.cluster = cluster
        self.include_handshakes = include_handshakes
        self.records: List[RecordedTrigger] = []
        self._recording = False
        self._previous_hooks = {}
        for dpid, proxy in cluster.proxies.items():
            previous = proxy.on_switch_to_controller
            self._previous_hooks[dpid] = previous
            proxy.on_switch_to_controller = self._make_hook(dpid, previous)

    def _make_hook(self, dpid: int, previous):
        def hook(message):
            if previous is not None:
                previous(message)
            if self._recording and self._should_record(message):
                self.records.append(RecordedTrigger(
                    time_ms=self.cluster.sim.now, dpid=dpid,
                    message=message))
        return hook

    def _should_record(self, message) -> bool:
        if isinstance(message, PacketIn):
            return True
        return self.include_handshakes

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin recording."""
        self._recording = True

    def stop(self) -> None:
        """Stop recording (records are kept)."""
        self._recording = False

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dump(self) -> bytes:
        """Serialize the recording (wire-encoded messages + timestamps)."""
        chunks = []
        for record in self.records:
            frame = wire.encode(record.message)
            chunks.append(_RECORD_HEADER.pack(record.time_ms, record.dpid,
                                              len(frame)))
            chunks.append(frame)
        return b"".join(chunks)

    @staticmethod
    def load(data: bytes) -> List[RecordedTrigger]:
        """Parse a recording produced by :meth:`dump`."""
        records: List[RecordedTrigger] = []
        offset = 0
        while offset < len(data):
            if offset + _RECORD_HEADER.size > len(data):
                raise WorkloadError("truncated recording header")
            time_ms, dpid, length = _RECORD_HEADER.unpack_from(data, offset)
            offset += _RECORD_HEADER.size
            frame = data[offset:offset + length]
            if len(frame) != length:
                raise WorkloadError("truncated recording frame")
            offset += length
            message, rest = wire.decode(frame)
            if rest:
                raise WorkloadError("trailing bytes in recorded frame")
            records.append(RecordedTrigger(time_ms=time_ms, dpid=dpid,
                                           message=message))
        return records


class TraceReplayer:
    """Re-injects a recording into a cluster with original relative timing."""

    def __init__(self, sim: Simulator, cluster: ControllerCluster,
                 records: List[RecordedTrigger],
                 speedup: float = 1.0):
        if speedup <= 0:
            raise WorkloadError("speedup must be positive")
        self.sim = sim
        self.cluster = cluster
        self.records = records
        self.speedup = speedup
        self.replayed = 0
        self.skipped = 0

    def start(self) -> None:
        """Schedule every recorded trigger relative to now."""
        if not self.records:
            return
        base = self.records[0].time_ms
        for record in self.records:
            delay = (record.time_ms - base) / self.speedup
            self.sim.schedule(delay, self._inject, record)

    def _inject(self, record: RecordedTrigger) -> None:
        proxy = self.cluster.proxies.get(record.dpid)
        if proxy is None:
            self.skipped += 1
            return
        self.replayed += 1
        # Enter through the proxy exactly as the switch's message would:
        # the primary receives it and JURY's replicator (if deployed) sees it.
        proxy._from_switch(record.message)


# ----------------------------------------------------------------------
# Validator-stream record and replay (the differential-equivalence rig)
# ----------------------------------------------------------------------

@dataclass
class RecordedResponse:
    """One response as it reached the validator, with its arrival time."""

    time_ms: float
    response: Response


class ValidatorStreamRecorder:
    """Taps a deployment's validator and records its inbound responses.

    Trigger ids come from process-global counters
    (:mod:`repro.controllers.context`), so two *separate* experiment runs
    can never produce comparable absolute ids. The differential suite
    therefore records the response stream *once* from a live run and
    replays the identical stream into fresh validators — sequential and
    pipelined — on fresh simulators.
    """

    def __init__(self, deployment):
        self.records: List[RecordedResponse] = []
        self._validator = deployment.validator
        self._sim = deployment.sim
        original = self._validator.handle_control_message

        def tap(channel, response: Response) -> None:
            self.records.append(RecordedResponse(
                time_ms=self._sim.now, response=response))
            original(channel, response)

        # Instance-attribute override; ControlChannel._deliver looks the
        # handler up per delivery, so the tap sees every response.
        self._validator.handle_control_message = tap

    def __len__(self) -> int:
        return len(self.records)


def replay_validation_stream(records: List[RecordedResponse],
                             make_validator: Callable[[Simulator], object],
                             settle_ms: float = 10_000.0):
    """Replay a recorded response stream into a fresh validator.

    ``make_validator`` receives a fresh :class:`Simulator` and returns any
    object with ``ingest`` (the sequential validator or a pipeline). Every
    response is scheduled at its recorded arrival time, so timers θτ and
    batching behave exactly as they did (or would have) live; ``settle_ms``
    of extra simulated time lets trailing timers fire.
    """
    sim = Simulator(seed=0)
    validator = make_validator(sim)
    for record in records:
        sim.schedule_at(record.time_ms, validator.ingest, record.response)
    last = records[-1].time_ms if records else 0.0
    sim.run(until=last + settle_ms)
    return validator
