"""Cbench-like controller benchmark (Fig 4e).

Cbench in throughput mode emulates switches that blast back-to-back
PACKET_INs as fast as the controller will take them. The paper observed that
this *overwhelms* ONOS: the TCP window closes ("zero window" at the
controller, "transmission window full" at the switch) and the FLOW_MOD
output collapses to zero rather than plateauing — which is why the paper
abandons Cbench for cluster-throughput measurements.

The driver injects synthetic PACKET_INs directly into a controller's
pipeline in blocking bursts and samples both rates over time so the bench
can reproduce the burst/collapse time series.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.controllers.base import Controller
from repro.datastore.caches import HOSTSDB, host_key, host_value
from repro.net.packet import tcp_packet
from repro.openflow.messages import PacketIn
from repro.sim.simulator import Simulator


@dataclass
class CbenchSample:
    """One sampling interval of the Cbench time series."""

    time_ms: float
    packet_in_rate_per_s: float
    flow_mod_rate_per_s: float


class CbenchDriver:
    """Blast bursts of PACKET_INs at one controller and sample throughput."""

    def __init__(
        self,
        sim: Simulator,
        controller: Controller,
        dpid: int = 9001,
        burst_size: int = 400,
        burst_gap_ms: float = 4.0,
        duration_ms: float = 50000.0,
        sample_interval_ms: float = 1000.0,
        fake_hosts: int = 64,
    ):
        self.sim = sim
        self.controller = controller
        self.dpid = dpid
        self.burst_size = burst_size
        self.burst_gap_ms = burst_gap_ms
        self.duration_ms = duration_ms
        self.sample_interval_ms = sample_interval_ms
        self.samples: List[CbenchSample] = []
        self._rng = sim.fork_rng("cbench")
        self._ports = itertools.count(20000)
        self._sent = 0
        self._last_sent = 0
        self._last_flow_mods = 0
        self._end_time: Optional[float] = None
        self._macs = [f"cb:00:00:00:{i // 256:02x}:{i % 256:02x}"
                      for i in range(fake_hosts)]
        self._seed_fake_hosts(fake_hosts)
        # The emulated switch is governed by the controller under test and
        # has no real datapath: reconciliation would never converge.
        if controller.cluster is not None:
            controller.cluster.mastership[dpid] = controller.id
        controller.profile.flow_reconcile_delay_ms = 0.0

    def _seed_fake_hosts(self, count: int) -> None:
        """Pre-populate HostsDB so every PACKET_IN elicits a FLOW_MOD.

        Cbench's emulated switch hosts are 'known' to the controller; an
        unknown destination would flood instead of installing a flow.
        """
        store = self.controller.store
        for index, mac in enumerate(self._macs):
            key = host_key(mac)
            cache = store.caches.setdefault(HOSTSDB, {})
            cache[key] = host_value(mac, f"192.168.{index // 256}.{index % 256}",
                                    self.dpid, 1 + index % 8)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin bursting and sampling."""
        self._end_time = self.sim.now + self.duration_ms
        self.sim.schedule(0.0, self._burst)
        self.sim.schedule(self.sample_interval_ms, self._sample)

    def _burst(self) -> None:
        if self._end_time is None or self.sim.now >= self._end_time:
            return
        for _ in range(self.burst_size):
            src, dst = self._rng.sample(self._macs, 2)
            packet = tcp_packet(src, dst, "10.9.0.1", "10.9.0.2",
                                src_port=next(self._ports), dst_port=80)
            self.controller.ingress_packet_in(PacketIn(
                dpid=self.dpid, in_port=1, packet=packet))
            self._sent += 1
        self.sim.schedule(self.burst_gap_ms, self._burst)

    def _sample(self) -> None:
        interval_s = self.sample_interval_ms / 1000.0
        sent = self._sent - self._last_sent
        flow_mods = self.controller.flow_mods_sent - self._last_flow_mods
        self._last_sent = self._sent
        self._last_flow_mods = self.controller.flow_mods_sent
        self.samples.append(CbenchSample(
            time_ms=self.sim.now,
            packet_in_rate_per_s=sent / interval_s,
            flow_mod_rate_per_s=flow_mods / interval_s,
        ))
        if self._end_time is not None and self.sim.now < self._end_time:
            self.sim.schedule(self.sample_interval_ms, self._sample)
