"""Synthetic stand-ins for the paper's benign traces (Fig 4d).

The paper replays three public traces against a JURY-enhanced ONOS cluster
to measure false alarms: LBNL (enterprise), UNIV (university data center,
IMC 2010), and SMIA (cyber-defense exercise). The raw traces are not
available offline, so each profile here synthesizes traffic with the
character that matters for validation load: mean trigger rate, burstiness,
ARP/host-churn mix, and link-event frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.net.topology import Topology
from repro.sim.simulator import Simulator
from repro.workloads.traffic import TrafficDriver


@dataclass(frozen=True)
class TraceProfile:
    """Shape parameters of a benign trace."""

    name: str
    packet_in_rate_per_s: float
    #: Relative amplitude of sinusoidal rate variation (0 = constant).
    burstiness: float
    #: Period of the rate variation (ms).
    burst_period_ms: float
    host_join_rate_per_s: float
    link_churn_rate_per_s: float


#: Enterprise traffic: moderate steady rate, slow variation, mild churn.
LBNL = TraceProfile(
    name="LBNL",
    packet_in_rate_per_s=900.0,
    burstiness=0.25,
    burst_period_ms=4000.0,
    host_join_rate_per_s=1.0,
    link_churn_rate_per_s=0.0,
)

#: University data center: higher rate with sharper swings.
UNIV = TraceProfile(
    name="UNIV",
    packet_in_rate_per_s=2200.0,
    burstiness=0.5,
    burst_period_ms=1500.0,
    host_join_rate_per_s=2.0,
    link_churn_rate_per_s=0.2,
)

#: Cyber-defense exercise: bursty scan-like load with frequent churn.
SMIA = TraceProfile(
    name="SMIA",
    packet_in_rate_per_s=3200.0,
    burstiness=0.8,
    burst_period_ms=800.0,
    host_join_rate_per_s=4.0,
    link_churn_rate_per_s=0.5,
)

ALL_TRACES = (LBNL, UNIV, SMIA)


class TraceReplayDriver(TrafficDriver):
    """Replays a :class:`TraceProfile` onto a topology."""

    def __init__(self, sim: Simulator, topology: Topology,
                 profile: TraceProfile, duration_ms: float):
        self.profile = profile
        super().__init__(
            sim, topology,
            packet_in_rate_per_s=profile.packet_in_rate_per_s,
            duration_ms=duration_ms,
            seed_label=f"trace/{profile.name}",
            host_join_rate_per_s=profile.host_join_rate_per_s,
            link_churn_rate_per_s=profile.link_churn_rate_per_s,
            rate_modulator=self._modulate,
        )

    def _modulate(self, time_ms: float) -> float:
        profile = self.profile
        if profile.burstiness <= 0:
            return 1.0
        phase = 2.0 * math.pi * time_ms / profile.burst_period_ms
        return 1.0 + profile.burstiness * math.sin(phase)
