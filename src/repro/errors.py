"""Exception hierarchy for the JURY reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries while tests can assert on precise
subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that has
    been stopped, or cancelling an event twice.
    """


class TopologyError(ReproError):
    """A network topology is malformed (unknown node, duplicate link, ...)."""


class OpenFlowError(ReproError):
    """An OpenFlow message or flow-table operation is invalid."""


class MatchFieldError(OpenFlowError):
    """A flow match violates the OpenFlow field prerequisite hierarchy.

    This is the error underlying the "ODL incorrect FLOW_MOD" fault (T3):
    OpenFlow 1.0 switches silently discard match fields whose prerequisites
    are unset, desynchronizing switch and data store.
    """


class DatastoreError(ReproError):
    """A distributed-store operation failed (lock contention, no quorum)."""


class CacheLockError(DatastoreError):
    """The distributed store could not obtain a lock for the write.

    Models the "ONOS database locking" fault: replicas occasionally hit a
    "failed to obtain lock" error from the distributed graph database.
    """


class ControllerError(ReproError):
    """A controller replica failed to process a trigger."""


class ClusterError(ControllerError):
    """Cluster membership or mastership management failed."""


class ValidationError(ReproError):
    """The JURY validator was driven with malformed responses."""


class CheckpointError(ValidationError):
    """A checkpoint or write-ahead log could not be saved or restored.

    Raised on format/version mismatches, sha-256 digest failures, restoring
    into an engine whose shape (k, shards, timeout) differs from the one
    that produced the snapshot, or restoring through a closed backend.
    """


class PolicyError(ReproError):
    """A JURY policy is syntactically or semantically invalid."""


class WorkloadError(ReproError):
    """A traffic generator was configured with impossible parameters."""
