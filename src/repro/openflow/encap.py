"""PACKET_IN encapsulation for replicated triggers (ODL mode).

JURY configures the OVS in OpenFlow mode toward ODL secondaries, so a
replicated message arrives wrapped in an *extra* PACKET_IN: if the original
trigger was already a PACKET_IN, secondaries receive a doubly encapsulated
one and must strip it before processing (§VI-A). Fig 4i measures this
decapsulation overhead: 80% of packets under 150 µs.

The CPU cost model charges a base parse cost plus a per-byte copy cost with a
long-tailed jitter term, yielding the paper's sub-200 µs distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import OpenFlowError
from repro.net.packet import EtherType, Packet
from repro.openflow.messages import PacketIn

_ENCAP_HEADER_BYTES = 18  # ofp_packet_in header around the inner frame

# Decapsulation cost model (milliseconds): base parse + per-byte copy.
_DECAP_BASE_MS = 0.035
_DECAP_PER_BYTE_MS = 0.0004
_DECAP_JITTER_SIGMA = 0.55


@dataclass
class EncapStats:
    """Aggregate decapsulation measurements for Fig 4i."""

    count: int = 0
    total_ms: float = 0.0
    samples_ms: List[float] = field(default_factory=list)

    def record(self, cost_ms: float) -> None:
        self.count += 1
        self.total_ms += cost_ms
        self.samples_ms.append(cost_ms)


def encapsulate_packet_in(inner: PacketIn, ovs_dpid: int, ovs_port: int) -> PacketIn:
    """Wrap ``inner`` in an outer PACKET_IN as the OVS proxy does.

    The outer message's packet payload carries the inner message, growing by
    the encapsulation header. This is what an ODL secondary receives.
    """
    carrier = Packet(
        src_mac="00:00:00:00:00:00",
        dst_mac="00:00:00:00:00:00",
        eth_type=EtherType.IPV4,
        payload=inner,
        size=inner.wire_size() + _ENCAP_HEADER_BYTES,
    )
    return PacketIn(dpid=ovs_dpid, in_port=ovs_port, packet=carrier)


def decapsulate_packet_in(
    outer: PacketIn, rng: random.Random
) -> Tuple[PacketIn, float]:
    """Strip one level of encapsulation; returns ``(inner, cost_ms)``.

    Raises :class:`OpenFlowError` if the outer message does not actually
    carry an encapsulated PACKET_IN.
    """
    if outer.packet is None or not isinstance(outer.packet.payload, PacketIn):
        raise OpenFlowError("message is not an encapsulated PACKET_IN")
    inner = outer.packet.payload
    cost = _DECAP_BASE_MS + _DECAP_PER_BYTE_MS * outer.packet.size
    cost *= rng.lognormvariate(0.0, _DECAP_JITTER_SIGMA)
    return inner, cost
