"""Priority-ordered flow table for the soft switch."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import OpenFlowError
from repro.net.packet import Packet
from repro.openflow.actions import Action
from repro.openflow.match import Match


@dataclass
class FlowEntry:
    """An installed flow rule with hit statistics."""

    match: Match
    actions: Tuple[Action, ...]
    priority: int = 100
    cookie: int = 0
    idle_timeout: float = 0.0
    packets: int = 0
    bytes: int = 0
    installed_at: float = 0.0
    last_hit: float = 0.0

    def key(self) -> Tuple:
        """Identity for strict delete/modify: (match, priority)."""
        return (self.match.canonical(), self.priority)


def _exact_signature(match: Match) -> Optional[Tuple]:
    """TCAM fast-path signature for fully specified (exact) matches.

    Exact src-dst rules dominate reactive workloads; indexing them by a
    header tuple keeps lookup O(1) instead of scanning hundreds of
    thousands of entries at high PACKET_IN rates.
    """
    fields = (match.in_port, match.dl_src, match.dl_dst, match.dl_type,
              match.nw_src, match.nw_dst, match.nw_proto,
              match.tp_src, match.tp_dst)
    if any(f is None for f in fields):
        return None
    return fields


def _packet_signature(packet: Packet, in_port: Optional[int]) -> Tuple:
    return (in_port, packet.src_mac, packet.dst_mac, int(packet.eth_type),
            packet.src_ip, packet.dst_ip,
            None if packet.ip_proto is None else int(packet.ip_proto),
            packet.src_port, packet.dst_port)


class FlowTable:
    """A single OpenFlow table: highest priority wins, FIFO within priority.

    Fully specified matches live in an exact-match hash index; wildcard
    entries in a small priority-sorted list.
    """

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = max_entries
        self._exact: dict = {}
        self._wildcards: List[FlowEntry] = []

    def __len__(self) -> int:
        return len(self._exact) + len(self._wildcards)

    def __iter__(self):
        yield from self._exact.values()
        yield from self._wildcards

    @property
    def entries(self) -> Tuple[FlowEntry, ...]:
        return tuple(self)

    def add(self, entry: FlowEntry) -> None:
        """Install an entry, replacing an exact (match, priority) duplicate."""
        if self.max_entries is not None and len(self) >= self.max_entries:
            if self.find(entry.match, entry.priority) is None:
                raise OpenFlowError(
                    f"flow table full ({self.max_entries} entries)"
                )
        signature = _exact_signature(entry.match)
        if signature is not None:
            self._exact[signature] = entry
            return
        self._wildcards = [e for e in self._wildcards if e.key() != entry.key()]
        self._wildcards.append(entry)
        # Descending priority; stable sort preserves FIFO within a priority.
        self._wildcards.sort(key=lambda e: -e.priority)

    def find(self, match: Match, priority: int) -> Optional[FlowEntry]:
        """Locate the entry with exactly this (match, priority), if any."""
        signature = _exact_signature(match)
        if signature is not None:
            entry = self._exact.get(signature)
            if entry is not None and entry.priority == priority:
                return entry
            return None
        key = (match.canonical(), priority)
        for entry in self._wildcards:
            if entry.key() == key:
                return entry
        return None

    def delete(self, match: Match, strict_priority: Optional[int] = None) -> int:
        """Remove matching entries; returns how many were removed.

        Non-strict delete removes every entry whose match equals ``match``
        regardless of priority (the common controller usage here); strict
        delete requires the priority too.
        """
        signature = _exact_signature(match)
        if signature is not None:
            entry = self._exact.get(signature)
            if entry is None:
                return 0
            if strict_priority is not None and entry.priority != strict_priority:
                return 0
            del self._exact[signature]
            return 1
        before = len(self._wildcards)
        if strict_priority is None:
            canonical = match.canonical()
            self._wildcards = [e for e in self._wildcards
                               if e.match.canonical() != canonical]
        else:
            key = (match.canonical(), strict_priority)
            self._wildcards = [e for e in self._wildcards if e.key() != key]
        return before - len(self._wildcards)

    def lookup(self, packet: Packet, in_port: Optional[int] = None) -> Optional[FlowEntry]:
        """Return the highest-priority entry matching the packet, or None."""
        exact = self._exact.get(_packet_signature(packet, in_port))
        for entry in self._wildcards:
            if exact is not None and entry.priority <= exact.priority:
                break  # wildcards are priority-sorted; exact entry wins
            if entry.match.matches(packet, in_port):
                return entry
        return exact

    def expire_idle(self, now: float) -> int:
        """Remove entries idle past their timeout; returns removals."""
        def live(entry: FlowEntry) -> bool:
            if entry.idle_timeout <= 0:
                return True
            return (now - max(entry.last_hit, entry.installed_at)) < entry.idle_timeout

        before = len(self)
        self._exact = {sig: e for sig, e in self._exact.items() if live(e)}
        self._wildcards = [e for e in self._wildcards if live(e)]
        return before - len(self)
