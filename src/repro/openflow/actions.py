"""OpenFlow actions applied by the soft switch."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.openflow.constants import OFPP_CONTROLLER, OFPP_FLOOD


@dataclass(frozen=True)
class ActionOutput:
    """Forward the packet out of a specific port."""

    port: int

    def canonical(self) -> Tuple:
        return ("output", self.port)


@dataclass(frozen=True)
class ActionFlood:
    """Forward out of every port except the ingress port."""

    def canonical(self) -> Tuple:
        return ("output", OFPP_FLOOD)


@dataclass(frozen=True)
class ActionController:
    """Punt the packet to the controller as a PACKET_IN."""

    def canonical(self) -> Tuple:
        return ("output", OFPP_CONTROLLER)


@dataclass(frozen=True)
class ActionDrop:
    """Explicitly drop the packet (empty action list in real OpenFlow).

    The "undesirable FLOW_MOD" synthetic T2 fault swaps a forwarding action
    for this one.
    """

    def canonical(self) -> Tuple:
        return ("drop",)


Action = Union[ActionOutput, ActionFlood, ActionController, ActionDrop]


def canonical_actions(actions: Tuple[Action, ...]) -> Tuple:
    """Hashable canonical form of an action list for consensus comparison."""
    return tuple(action.canonical() for action in actions)
