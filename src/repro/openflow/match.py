"""OpenFlow 1.0 match structure with field-prerequisite validation.

OpenFlow 1.0 match fields form a hierarchy: network-layer fields
(``nw_src``/``nw_dst``/``nw_proto``) are only meaningful when ``dl_type``
selects IPv4 or ARP, and transport-layer fields (``tp_src``/``tp_dst``) only
when ``nw_proto`` selects TCP/UDP/ICMP. OpenFlow 1.0 switches *silently
discard* fields whose prerequisites are unset — the behaviour behind the
"ODL incorrect FLOW_MOD" fault (T3), where the switch-installed flow diverges
from the data store. :meth:`Match.validate_hierarchy` detects such matches
and :meth:`Match.strip_unsupported_fields` reproduces the switch behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

from repro.errors import MatchFieldError
from repro.net.packet import EtherType, IpProto, Packet

_NW_FIELDS = ("nw_src", "nw_dst", "nw_proto")
_TP_FIELDS = ("tp_src", "tp_dst")
_NW_ETH_TYPES = (int(EtherType.IPV4), int(EtherType.ARP))
_TP_PROTOS = (int(IpProto.TCP), int(IpProto.UDP), int(IpProto.ICMP))


@dataclass(frozen=True)
class Match:
    """A wildcard-capable match over the OpenFlow 1.0 12-tuple subset.

    ``None`` means "wildcard". Matches are hashable and canonically ordered,
    so they can serve directly as cache keys and consensus entries.
    """

    in_port: Optional[int] = None
    dl_src: Optional[str] = None
    dl_dst: Optional[str] = None
    dl_type: Optional[int] = None
    nw_src: Optional[str] = None
    nw_dst: Optional[str] = None
    nw_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    # ------------------------------------------------------------------
    # Prerequisite hierarchy
    # ------------------------------------------------------------------
    def hierarchy_violations(self) -> Tuple[str, ...]:
        """Return the names of fields whose prerequisites are unset."""
        bad = []
        nw_ok = self.dl_type in _NW_ETH_TYPES
        if not nw_ok:
            bad.extend(f for f in _NW_FIELDS if getattr(self, f) is not None)
        tp_ok = nw_ok and self.nw_proto in _TP_PROTOS
        if not tp_ok:
            bad.extend(f for f in _TP_FIELDS if getattr(self, f) is not None)
        return tuple(bad)

    def validate_hierarchy(self) -> None:
        """Raise :class:`MatchFieldError` if any prerequisite is violated."""
        bad = self.hierarchy_violations()
        if bad:
            raise MatchFieldError(
                f"match fields {bad} set without their prerequisites: {self}"
            )

    def strip_unsupported_fields(self) -> "Match":
        """Reproduce OpenFlow 1.0 switch behaviour: drop orphan fields.

        A well-formed match is returned unchanged; a malformed one comes
        back *different* from what the controller stored — the switch/store
        inconsistency of the ODL incorrect-FLOW_MOD fault.
        """
        bad = self.hierarchy_violations()
        if not bad:
            return self
        return replace(self, **{name: None for name in bad})

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def matches(self, packet: Packet, in_port: Optional[int] = None) -> bool:
        """True if ``packet`` arriving on ``in_port`` satisfies this match."""
        checks = (
            (self.in_port, in_port),
            (self.dl_src, packet.src_mac),
            (self.dl_dst, packet.dst_mac),
            (self.dl_type, int(packet.eth_type)),
            (self.nw_src, packet.src_ip),
            (self.nw_dst, packet.dst_ip),
            (self.nw_proto, None if packet.ip_proto is None else int(packet.ip_proto)),
            (self.tp_src, packet.src_port),
            (self.tp_dst, packet.dst_port),
        )
        return all(want is None or want == got for want, got in checks)

    def specificity(self) -> int:
        """Number of non-wildcard fields (used for tie-breaking diagnostics)."""
        return sum(1 for f in fields(self) if getattr(self, f.name) is not None)

    def canonical(self) -> Tuple:
        """A hashable canonical form used as a consensus/cache entry."""
        return tuple((f.name, getattr(self, f.name)) for f in fields(self)
                     if getattr(self, f.name) is not None)

    @classmethod
    def from_canonical(cls, canonical: Tuple) -> "Match":
        """Rebuild a Match from its :meth:`canonical` form."""
        return cls(**dict(canonical))

    @classmethod
    def for_flow(cls, packet: Packet, in_port: Optional[int] = None) -> "Match":
        """Exact src-dst match for a data packet (ONOS reactive style)."""
        nw_proto = None if packet.ip_proto is None else int(packet.ip_proto)
        return cls(
            in_port=in_port,
            dl_src=packet.src_mac,
            dl_dst=packet.dst_mac,
            dl_type=int(packet.eth_type),
            nw_src=packet.src_ip,
            nw_dst=packet.dst_ip,
            nw_proto=nw_proto,
            tp_src=packet.src_port,
            tp_dst=packet.dst_port,
        )

    @classmethod
    def for_destination(cls, dst_mac: str) -> "Match":
        """Destination-only match (ODL proactive style)."""
        return cls(dl_dst=dst_mac)
