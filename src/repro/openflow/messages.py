"""OpenFlow control messages and the northbound REST request record.

Each message reports a ``wire_size()`` in bytes so channels can account for
the network-overhead results in §VII-B.2. Sizes approximate OpenFlow 1.0
encodings (header 8 bytes, flow_mod body 64+, packet_in 18 + frame).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.net.packet import Packet
from repro.openflow.actions import Action, canonical_actions
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match

_xid_counter = itertools.count(1)


def next_xid() -> int:
    """Monotonic OpenFlow transaction id (shared across the process)."""
    return next(_xid_counter)


@dataclass
class OpenFlowMessage:
    """Base class: every southbound message carries a transaction id."""

    xid: int = field(default_factory=next_xid, kw_only=True)

    def wire_size(self) -> int:
        return 8  # ofp_header


@dataclass
class Hello(OpenFlowMessage):
    """Version negotiation — first message in either direction."""


@dataclass
class EchoRequest(OpenFlowMessage):
    """Liveness probe."""


@dataclass
class EchoReply(OpenFlowMessage):
    """Liveness response."""


@dataclass
class FeaturesRequest(OpenFlowMessage):
    """Controller asks the switch for its datapath description."""


@dataclass
class FeaturesReply(OpenFlowMessage):
    """Switch identifies itself; acceptance marks the switch *connected*.

    In ONOS the controller then writes the switch entry to the shared cache —
    the write that the database-locking fault makes fail.
    """

    dpid: int = 0
    ports: Tuple[int, ...] = ()

    def wire_size(self) -> int:
        return 32 + 48 * len(self.ports)


@dataclass
class BarrierRequest(OpenFlowMessage):
    """Flush marker."""


@dataclass
class BarrierReply(OpenFlowMessage):
    """Flush acknowledgment."""


@dataclass
class PacketIn(OpenFlowMessage):
    """Table-miss (or action-directed) punt of a data packet to the controller."""

    dpid: int = 0
    in_port: int = 0
    packet: Optional[Packet] = None
    buffer_id: Optional[int] = None

    def wire_size(self) -> int:
        frame = self.packet.size if self.packet is not None else 0
        return 18 + frame


@dataclass
class FlowMod(OpenFlowMessage):
    """Install, modify, or delete a flow rule on a switch."""

    dpid: int = 0
    command: FlowModCommand = FlowModCommand.ADD
    match: Match = field(default_factory=Match)
    actions: Tuple[Action, ...] = ()
    priority: int = 100
    idle_timeout: float = 0.0
    cookie: int = 0

    def wire_size(self) -> int:
        return 72 + 8 * len(self.actions)

    def canonical(self) -> Tuple:
        """Canonical body for consensus comparison at the validator."""
        return (
            "flow_mod",
            self.dpid,
            self.command.value,
            self.match.canonical(),
            canonical_actions(self.actions),
            self.priority,
        )


@dataclass
class PacketOut(OpenFlowMessage):
    """Controller-directed transmission of a (possibly buffered) packet."""

    dpid: int = 0
    in_port: int = 0
    packet: Optional[Packet] = None
    buffer_id: Optional[int] = None
    actions: Tuple[Action, ...] = ()

    def wire_size(self) -> int:
        frame = self.packet.size if self.packet is not None else 0
        return 16 + 8 * len(self.actions) + frame

    def canonical(self) -> Tuple:
        return (
            "packet_out",
            self.dpid,
            self.buffer_id,
            canonical_actions(self.actions),
        )


@dataclass
class RestRequest:
    """A northbound (REST API) trigger — external, like PACKET_INs.

    ``operation`` is one of ``"add_flow"``, ``"delete_flow"``,
    ``"update_link"``, etc.; ``params`` are operation-specific.
    """

    operation: str
    params: Dict[str, Any] = field(default_factory=dict)
    request_id: int = field(default_factory=next_xid)

    def wire_size(self) -> int:
        return 256  # typical small HTTP request

    def canonical(self) -> Tuple:
        return ("rest", self.operation, tuple(sorted(self.params.items(), key=repr)))
