"""OpenFlow constants (reserved ports, commands, flow-entry states)."""

from __future__ import annotations

import enum

# Reserved output "ports" (OpenFlow 1.0 ofp_port values).
OFPP_LOCAL = 0xFFFE
OFPP_FLOOD = 0xFFFB
OFPP_CONTROLLER = 0xFFFD
OFPP_NONE = 0xFFFF


class FlowModCommand(enum.Enum):
    """FLOW_MOD commands supported by the soft switch."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"
    DELETE_STRICT = "delete_strict"


class FlowState(enum.Enum):
    """Lifecycle of a flow rule in the controller's flow store.

    ONOS keeps rules in ``PENDING_ADD`` until the switch's reported entries
    match the store; an inconsistency strands the rule in ``PENDING_ADD``
    (Appendix fault 4).
    """

    PENDING_ADD = "pending_add"
    ADDED = "added"
    PENDING_REMOVE = "pending_remove"
    REMOVED = "removed"
