"""OpenFlow 1.0-style southbound protocol.

Implements the subset of OpenFlow the paper's systems exercise: the
connection handshake (HELLO / FEATURES), PACKET_IN, FLOW_MOD, PACKET_OUT,
ECHO, match-field prerequisite validation (the root cause of the "ODL
incorrect FLOW_MOD" fault), priority-ordered flow tables, and the
encapsulation path JURY's OVS replication uses for ODL.
"""

from repro.openflow.actions import (
    Action,
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
)
from repro.openflow.constants import (
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OFPP_LOCAL,
    OFPP_NONE,
    FlowModCommand,
    FlowState,
)
from repro.openflow.encap import EncapStats, decapsulate_packet_in, encapsulate_packet_in
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    RestRequest,
)

__all__ = [
    "Action",
    "ActionController",
    "ActionDrop",
    "ActionFlood",
    "ActionOutput",
    "BarrierReply",
    "BarrierRequest",
    "EchoReply",
    "EchoRequest",
    "EncapStats",
    "FeaturesReply",
    "FeaturesRequest",
    "FlowEntry",
    "FlowMod",
    "FlowModCommand",
    "FlowState",
    "FlowTable",
    "Hello",
    "Match",
    "OFPP_CONTROLLER",
    "OFPP_FLOOD",
    "OFPP_LOCAL",
    "OFPP_NONE",
    "OpenFlowMessage",
    "PacketIn",
    "PacketOut",
    "RestRequest",
    "decapsulate_packet_in",
    "encapsulate_packet_in",
]
