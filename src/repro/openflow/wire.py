"""OpenFlow 1.0 wire encoding.

Serializes the message objects of :mod:`repro.openflow.messages` to a
compact binary framing modeled on the OpenFlow 1.0 encoding (8-byte
``ofp_header`` with version/type/length/xid, big-endian fields), and parses
them back. Used by the control-plane recorder for on-disk traces and by
tests to keep the ``wire_size()`` estimates honest.

The encoding is self-contained rather than byte-exact OpenFlow: match
fields and packets carry a tagged TLV body (real OF 1.0 would need the full
``ofp_match`` wildcards bitmap and action structs, which nothing in the
evaluation depends on). Round-tripping is exact for every supported
message.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional, Tuple

from repro.errors import OpenFlowError
from repro.net.packet import EtherType, IpProto, LldpPayload, Packet
from repro.openflow.actions import (
    Action,
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
)
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
)

OFP_VERSION = 0x01
_HEADER = struct.Struct("!BBHI")  # version, type, length, xid

# ofp_type numbers (OpenFlow 1.0).
_TYPE_OF = {
    Hello: 0,
    EchoRequest: 2,
    EchoReply: 3,
    FeaturesRequest: 5,
    FeaturesReply: 6,
    PacketIn: 10,
    PacketOut: 13,
    FlowMod: 14,
    BarrierRequest: 18,
    BarrierReply: 19,
}
_OF_TYPE = {number: klass for klass, number in _TYPE_OF.items()}


def encode(message: OpenFlowMessage) -> bytes:
    """Serialize a message to its wire framing."""
    klass = type(message)
    if klass not in _TYPE_OF:
        raise OpenFlowError(f"cannot encode {klass.__name__}")
    if not 0 <= message.xid <= 0xFFFFFFFF:
        raise OpenFlowError(f"xid out of u32 range: {message.xid}")
    body = _encode_body(message)
    length = _HEADER.size + len(body)
    if length > 0xFFFF:
        raise OpenFlowError(f"message too large for OF framing: {length}")
    return _HEADER.pack(OFP_VERSION, _TYPE_OF[klass], length,
                        message.xid) + body


def decode(data: bytes) -> Tuple[OpenFlowMessage, bytes]:
    """Parse one message from ``data``; returns ``(message, remainder)``."""
    if len(data) < _HEADER.size:
        raise OpenFlowError("truncated OpenFlow header")
    version, of_type, length, xid = _HEADER.unpack_from(data)
    if version != OFP_VERSION:
        raise OpenFlowError(f"unsupported OpenFlow version {version}")
    if of_type not in _OF_TYPE:
        raise OpenFlowError(f"unknown ofp_type {of_type}")
    if length < _HEADER.size:
        # A length shorter than the header would slice an empty body AND
        # hand already-consumed header bytes back as "remainder", making
        # decode_all fabricate phantom messages from the same 8 bytes.
        raise OpenFlowError(f"ofp_header length {length} shorter than "
                            f"the {_HEADER.size}-byte header")
    if len(data) < length:
        raise OpenFlowError("truncated OpenFlow message body")
    body = data[_HEADER.size:length]
    message = _decode_body(_OF_TYPE[of_type], body)
    message.xid = xid
    return message, data[length:]


def decode_all(data: bytes):
    """Parse a concatenated stream of messages."""
    messages = []
    while data:
        message, data = decode(data)
        messages.append(message)
    return messages


# ----------------------------------------------------------------------
# Bodies (tagged JSON TLV — compact, unambiguous, round-trip exact)
# ----------------------------------------------------------------------

def _blob(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


def _unblob(body: bytes) -> dict:
    try:
        return json.loads(body.decode()) if body else {}
    except (ValueError, UnicodeDecodeError) as exc:
        raise OpenFlowError(f"malformed message body: {exc}") from exc


def _encode_body(message: OpenFlowMessage) -> bytes:
    if isinstance(message, (Hello, EchoRequest, EchoReply,
                            FeaturesRequest, BarrierRequest, BarrierReply)):
        return b""
    if isinstance(message, FeaturesReply):
        return _blob({"dpid": message.dpid, "ports": list(message.ports)})
    if isinstance(message, PacketIn):
        return _blob({
            "dpid": message.dpid, "in_port": message.in_port,
            "buffer_id": message.buffer_id,
            "packet": _packet_to_dict(message.packet),
        })
    if isinstance(message, PacketOut):
        return _blob({
            "dpid": message.dpid, "in_port": message.in_port,
            "buffer_id": message.buffer_id,
            "actions": [list(a.canonical()) for a in message.actions],
            "packet": _packet_to_dict(message.packet),
        })
    if isinstance(message, FlowMod):
        return _blob({
            "dpid": message.dpid,
            "command": message.command.value,
            "match": [list(pair) for pair in message.match.canonical()],
            "actions": [list(a.canonical()) for a in message.actions],
            "priority": message.priority,
            "idle_timeout": message.idle_timeout,
            "cookie": message.cookie,
        })
    raise OpenFlowError(f"cannot encode body of {type(message).__name__}")


def _decode_body(klass, body: bytes) -> OpenFlowMessage:
    if klass in (Hello, EchoRequest, EchoReply, FeaturesRequest,
                 BarrierRequest, BarrierReply):
        return klass()
    fields = _unblob(body)
    if klass is FeaturesReply:
        return FeaturesReply(dpid=fields["dpid"],
                             ports=tuple(fields["ports"]))
    if klass is PacketIn:
        return PacketIn(dpid=fields["dpid"], in_port=fields["in_port"],
                        buffer_id=fields["buffer_id"],
                        packet=_packet_from_dict(fields["packet"]))
    if klass is PacketOut:
        return PacketOut(dpid=fields["dpid"], in_port=fields["in_port"],
                         buffer_id=fields["buffer_id"],
                         actions=_actions_from_lists(fields["actions"]),
                         packet=_packet_from_dict(fields["packet"]))
    if klass is FlowMod:
        return FlowMod(
            dpid=fields["dpid"],
            command=FlowModCommand(fields["command"]),
            match=Match.from_canonical(
                tuple(tuple(pair) for pair in fields["match"])),
            actions=_actions_from_lists(fields["actions"]),
            priority=fields["priority"],
            idle_timeout=fields["idle_timeout"],
            cookie=fields["cookie"],
        )
    raise OpenFlowError(f"cannot decode body of {klass.__name__}")


def _actions_from_lists(items) -> Tuple[Action, ...]:
    actions = []
    for item in items:
        tag = item[0]
        if tag == "drop":
            actions.append(ActionDrop())
        elif tag == "output":
            port = item[1]
            from repro.openflow.constants import OFPP_CONTROLLER, OFPP_FLOOD

            if port == OFPP_FLOOD:
                actions.append(ActionFlood())
            elif port == OFPP_CONTROLLER:
                actions.append(ActionController())
            else:
                actions.append(ActionOutput(port))
        else:
            raise OpenFlowError(f"unknown action tag {tag!r}")
    return tuple(actions)


def _packet_to_dict(packet: Optional[Packet]) -> Optional[dict]:
    if packet is None:
        return None
    payload: Any = None
    if isinstance(packet.payload, LldpPayload):
        payload = {"__lldp__": [packet.payload.src_dpid,
                                packet.payload.src_port,
                                packet.payload.controller_id]}
    elif isinstance(packet.payload, (str, int, float, type(None))):
        payload = packet.payload
    # Complex payloads (e.g. encapsulated control messages) are not
    # serialized — recording captures the outer message instead.
    return {
        "src_mac": packet.src_mac, "dst_mac": packet.dst_mac,
        "eth_type": int(packet.eth_type),
        "src_ip": packet.src_ip, "dst_ip": packet.dst_ip,
        "ip_proto": None if packet.ip_proto is None else int(packet.ip_proto),
        "src_port": packet.src_port, "dst_port": packet.dst_port,
        "payload": payload, "size": packet.size, "flow_id": packet.flow_id,
    }


def _packet_from_dict(fields: Optional[dict]) -> Optional[Packet]:
    if fields is None:
        return None
    payload = fields["payload"]
    if isinstance(payload, dict) and "__lldp__" in payload:
        src_dpid, src_port, controller_id = payload["__lldp__"]
        payload = LldpPayload(src_dpid=src_dpid, src_port=src_port,
                              controller_id=controller_id)
    return Packet(
        src_mac=fields["src_mac"], dst_mac=fields["dst_mac"],
        eth_type=EtherType(fields["eth_type"]),
        src_ip=fields["src_ip"], dst_ip=fields["dst_ip"],
        ip_proto=None if fields["ip_proto"] is None
        else IpProto(fields["ip_proto"]),
        src_port=fields["src_port"], dst_port=fields["dst_port"],
        payload=payload, size=fields["size"], flow_id=fields["flow_id"],
    )
