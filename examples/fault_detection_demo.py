#!/usr/bin/env python3
"""Fault-detection demo: inject the paper's faults, watch JURY catch them.

Reproduces §VII-A1's scenario catalog against fresh clusters in the paper's
worst-case shape (n=7, full replication k=6): the real ONOS/ODL faults, the
three synthetic faults (one per Table 1 class), the Appendix faults, and the
generic distributed-system failure classes. For each scenario the demo
prints whether JURY detected it, through which mechanism, how fast, and
whether action attribution named the faulty controller.

Run:  python examples/fault_detection_demo.py
"""

from repro.faults import (
    CrashFault,
    FaultyProactiveFault,
    FlowDeletionFailureFault,
    FlowInstantiationFailureFault,
    LinkDetectionInconsistencyFault,
    LinkFailureFault,
    OdlFlowModDropFault,
    OdlIncorrectFlowModFault,
    OnosDatabaseLockFault,
    OnosMasterElectionFault,
    PendingAddFault,
    ResponseCorruptionFault,
    ResponseOmissionFault,
    TimingFault,
    UndesirableFlowModFault,
)
from repro.faults.base import run_scenario
from repro.faults.injector import default_policy_engine
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness import format_table

SCENARIOS = [
    # (controller kind, scenario, paper reference)
    ("onos", OnosDatabaseLockFault("c1"), "§III-B real T1"),
    ("onos", OnosMasterElectionFault(1, 2), "§III-B real T1"),
    ("odl", OdlFlowModDropFault("c1"), "§III-B real T2"),
    ("odl", OdlIncorrectFlowModFault("c1"), "§III-B real T3"),
    ("onos", LinkFailureFault(1, 2), "§VII-A1 synthetic T1"),
    ("onos", UndesirableFlowModFault("c2"), "§VII-A1 synthetic T2"),
    ("onos", FaultyProactiveFault("c3"), "§VII-A1 synthetic T3"),
    ("odl", FlowDeletionFailureFault("c1"), "Appendix 1 T1"),
    ("onos", LinkDetectionInconsistencyFault(2, 3), "Appendix 2 T1"),
    ("odl", FlowInstantiationFailureFault("c1"), "Appendix 3 T2"),
    ("onos", PendingAddFault(4), "Appendix 4 T2"),
    ("onos", CrashFault("c1"), "§III-B crash"),
    ("onos", ResponseOmissionFault("c2"), "§III-B omission"),
    ("onos", TimingFault("c3"), "§III-B timing"),
    ("onos", ResponseCorruptionFault("c1"), "§III-B response"),
]


def build(kind: str, seed: int):
    experiment = Jury.experiment(JuryConfig(
        kind=kind, n=7, k=6, switches=12, seed=seed,
        timeout_ms=250.0 if kind == "onos" else 1200.0,
        policy_engine=default_policy_engine(),
        with_northbound=True))
    experiment.warmup()
    return experiment


def main() -> None:
    rows = []
    for index, (kind, scenario, reference) in enumerate(SCENARIOS):
        experiment = build(kind, seed=60 + index)
        result = run_scenario(experiment, scenario)
        mechanism = (result.matching_alarms[0].reason.value
                     if result.matching_alarms else "-")
        offender = (result.matching_alarms[0].offending_controller
                    if result.matching_alarms else "-")
        rows.append([
            scenario.name,
            scenario.fault_class.value,
            reference,
            "YES" if result.detected else "NO",
            mechanism,
            f"{result.detection_ms:.0f} ms" if result.detection_ms else "-",
            offender,
        ])

    print(format_table(
        "JURY fault detection (n=7, k=6 full replication)",
        ["scenario", "class", "paper ref", "detected", "mechanism",
         "latency", "blamed"],
        rows))

    detected = sum(1 for row in rows if row[3] == "YES")
    print(f"\n{detected}/{len(rows)} faults detected.")
    assert detected == len(rows)


if __name__ == "__main__":
    main()
