#!/usr/bin/env python3
"""Adaptive validation timeouts (§VIII future work, implemented here).

The paper: "JURY relies on validation timeouts for raising alarms ... A
lower timeout can raise numerous false alarms, while a higher value may
result in increased detection times ... Adaptive timeouts can significantly
reduce the number of false alarms in networks with high churn. We leave
determination of adaptive timeouts for future work."

This example runs the same churny workload three times — generous static
timeout, too-tight static timeout, and the adaptive policy — and prints the
false-alarm/detection-latency trade-off, plus an alarm-log breakdown.

Run:  python examples/adaptive_timeouts.py
"""

from repro.core.alarm_log import AlarmLog
from repro.core.timeouts import AdaptiveTimeout
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness import format_table
from repro.workloads import TrafficDriver


def run(label, seed=150, timeout=None, timeout_ms=250.0):
    experiment = Jury.experiment(JuryConfig(kind="onos", n=7, k=6, switches=24,
                                  seed=seed, timeout_ms=timeout_ms))
    if timeout is not None:
        experiment.validator.timeout = timeout
    log = AlarmLog(experiment.validator)
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=4000.0, duration_ms=1200.0,
                           host_join_rate_per_s=10.0,
                           link_churn_rate_per_s=2.0)
    driver.start()
    experiment.run(1800.0)
    validator = experiment.validator
    stats = experiment.detection_stats()
    return {
        "label": label,
        "fp": validator.false_positive_rate(),
        "median": stats.median,
        "p95": stats.p95,
        "final_timeout": validator.timeout.current(),
        "log": log,
    }


def main() -> None:
    results = [
        run("static 250 ms", timeout_ms=250.0),
        run("static 30 ms (too tight)", timeout_ms=30.0),
        run("adaptive (q95 x 1.4)", timeout=AdaptiveTimeout(
            initial_ms=30.0, window=200, quantile=0.95, margin=1.4)),
    ]
    print(format_table(
        "Timeout policies under churn (4K PACKET_IN/s, host joins, "
        "link flaps)",
        ["policy", "false alarms", "median det ms", "p95 det ms",
         "final timeout"],
        [[r["label"], f"{100 * r['fp']:.2f}%", f"{r['median']:.0f}",
          f"{r['p95']:.0f}", f"{r['final_timeout']:.0f} ms"]
         for r in results]))

    tight = results[1]
    if tight["log"].records:
        print("\nAlarm breakdown for the too-tight timeout:")
        for reason, count in sorted(tight["log"].by_reason().items()):
            print(f"  {reason}: {count}")
        print("\nLast alarms:")
        for line in tight["log"].tail(3):
            print(" ", line)

    assert results[1]["fp"] > results[0]["fp"]
    assert results[2]["fp"] < results[1]["fp"] / 3
    print("\nOK: adaptive timeouts quell the tight-timeout false alarms.")


if __name__ == "__main__":
    main()
