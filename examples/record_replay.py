#!/usr/bin/env python3
"""Record a benign control-plane trace, replay it against a faulty cluster.

OFRewind-style troubleshooting (the paper's related work) adapted to JURY:
record the southbound trigger stream of a healthy run once, then replay the
*identical* triggers against a cluster with an injected fault. Because the
replay is deterministic, every alarm in the second run is attributable to
the fault, not to workload variation.

Run:  python examples/record_replay.py
"""

from repro.api import Jury
from repro.config import JuryConfig
from repro.harness import format_table
from repro.workloads import TrafficDriver
from repro.workloads.recorder import ControlPlaneRecorder, TraceReplayer


def corrupt_flow_writes(controller) -> None:
    """Arm a response-corruption fault: every flow rule this controller
    writes to the shared cache gets its actions flipped to drop-all."""
    original = controller.cache_write

    def corrupting(cache, key, value, ctx, op=None):
        if (cache == "FlowsDB" and not ctx.shadow and isinstance(value, dict)
                and value.get("state") == "pending_add"):
            value = dict(value)
            value["actions"] = (("drop",),)
        original(cache, key, value, ctx, op=op)

    controller.cache_write = corrupting


def build(seed=300):
    experiment = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8,
                                  seed=seed, timeout_ms=250.0))
    experiment.warmup()
    return experiment


def main() -> None:
    # ---- Pass 1: record a healthy run --------------------------------
    healthy = build()
    recorder = ControlPlaneRecorder(healthy.cluster)
    recorder.start()
    driver = TrafficDriver(healthy.sim, healthy.topology,
                           packet_in_rate_per_s=1200.0, duration_ms=800.0)
    driver.start()
    healthy.run(1400.0)
    recorder.stop()
    trace = recorder.dump()
    healthy_alarms = healthy.validator.triggers_alarmed

    # ---- Pass 2: replay the very same triggers, now with a fault -----
    faulty = build()  # same seed: identical cluster
    corrupt_flow_writes(faulty.cluster.controller("c1"))
    replayer = TraceReplayer(faulty.sim, faulty.cluster,
                             ControlPlaneRecorder.load(trace))
    replayer.start()
    faulty.run(2400.0)

    corruption_alarms = [
        alarm for alarm in faulty.validator.alarms
        if alarm.offending_controller == "c1"]

    print(format_table(
        "Record/replay: identical triggers, healthy vs corrupted cluster",
        ["run", "triggers recorded/replayed", "validated", "alarms"],
        [
            ["healthy (recorded)", len(recorder),
             healthy.validator.triggers_decided, healthy_alarms],
            ["corrupted c1 (replayed)", replayer.replayed,
             faulty.validator.triggers_decided,
             faulty.validator.triggers_alarmed],
        ]))
    print(f"\nAlarms blaming the corrupted controller: "
          f"{len(corruption_alarms)}")
    if corruption_alarms:
        print("First:", corruption_alarms[0])

    assert healthy_alarms == 0
    assert corruption_alarms, "the injected corruption must be detected"
    print("\nOK: the replayed trace isolates the fault cleanly.")


if __name__ == "__main__":
    main()
