#!/usr/bin/env python3
"""Policy enforcement: administrator constraints in JURY's language (§V).

Parses Fig 3's XML policy (no proactive EdgesDB changes), adds the
match-field-hierarchy policy that detects the "ODL incorrect FLOW_MOD"
fault, deploys them on a live cluster, and shows both a T3 fault being
caught by policy and benign actions passing untouched.

Run:  python examples/policy_enforcement.py
"""

from repro.faults import FaultyProactiveFault, OdlIncorrectFlowModFault
from repro.faults.base import run_scenario
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness import format_table
from repro.policy import PolicyEngine, match_hierarchy_policy, parse_policies

# Fig 3, verbatim modulo the paper's XML typo (`<Cache ="EdgesDB" ...>`).
FIG3_POLICY = """
<Policy allow="No" name="no-proactive-topology-changes">
  <Controller id="*"/>
  <Action type="Internal"/>
  <Cache name="EdgesDB" entry="*,*" operation="*"/>
  <Destination value="*"/>
</Policy>
"""


def main() -> None:
    engine = PolicyEngine(parse_policies(FIG3_POLICY))
    engine.add(match_hierarchy_policy())
    print(f"Loaded {len(engine)} policies.\n")

    rows = []

    # --- T3 fault 1: proactive topology corruption (caught by Fig 3) ----
    experiment = Jury.experiment(JuryConfig(
        kind="onos", n=5, k=4, switches=8, seed=81, timeout_ms=250.0,
        policy_engine=engine))
    experiment.warmup()
    result = run_scenario(experiment, FaultyProactiveFault("c3", 2, 3))
    rows.append(["faulty proactive EdgesDB write (T3)",
                 "YES" if result.detected else "NO",
                 result.matching_alarms[0].detail[:60]
                 if result.matching_alarms else "-"])

    # --- T3 fault 2: malformed match hierarchy (caught by the flow policy)
    experiment = Jury.experiment(JuryConfig(
        kind="odl", n=5, k=4, switches=8, seed=82, timeout_ms=1200.0,
        policy_engine=PolicyEngine(parse_policies(FIG3_POLICY)
                                   + [match_hierarchy_policy()]),
        with_northbound=True))
    experiment.warmup()
    result = run_scenario(experiment, OdlIncorrectFlowModFault("c1"))
    rows.append(["incorrect FLOW_MOD match hierarchy (T3)",
                 "YES" if result.detected else "NO",
                 result.matching_alarms[0].detail[:60]
                 if result.matching_alarms else "-"])

    # --- Benign traffic with the same policies: no alarms -----------------
    experiment = Jury.experiment(JuryConfig(
        kind="onos", n=5, k=4, switches=8, seed=83, timeout_ms=250.0,
        policy_engine=engine))
    experiment.warmup()
    hosts = experiment.topology.host_list()
    for i in range(6):
        experiment.sim.schedule(i * 40.0, hosts[i % 8].open_connection,
                                hosts[(i + 3) % 8])
    experiment.run(1200.0)
    benign_ok = experiment.validator.triggers_alarmed == 0
    rows.append(["benign reactive traffic",
                 "no alarms" if benign_ok else "FALSE ALARMS",
                 f"{experiment.validator.triggers_decided} triggers validated"])

    print(format_table("Policy enforcement results",
                       ["scenario", "outcome", "detail"], rows))
    assert benign_ok


if __name__ == "__main__":
    main()
