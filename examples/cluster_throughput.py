#!/usr/bin/env python3
"""Cluster throughput: why ONOS clusters scale and ODL clusters don't.

A compact version of §VII-B.1: drives tcpreplay-style traffic at a vanilla
ONOS cluster and a vanilla ODL cluster across cluster sizes, and prints the
measured FLOW_MOD rates. The consistency models do the work — ONOS's
eventually consistent Hazelcast store barely notices clustering, while
ODL's strongly consistent Infinispan store serializes writes cluster-wide.

Run:  python examples/cluster_throughput.py   (takes a minute or two)
"""

from repro.api import Jury
from repro.config import JuryConfig
from repro.harness import format_table
from repro.workloads import TcpReplayDriver


def measure(kind: str, n: int, rate: float, window_ms: float = 1500.0):
    experiment = Jury.experiment(JuryConfig(kind=kind, n=n, switches=24, seed=90, k=None, timeout_ms=200.0))
    experiment.warmup()
    driver = TcpReplayDriver(experiment.sim, experiment.topology,
                             packet_in_rate_per_s=rate,
                             duration_ms=window_ms)
    driver.start()
    experiment.begin_window()
    experiment.run(window_ms)
    return experiment.throughput()


def main() -> None:
    rows = []
    for n in (1, 3, 7):
        point = measure("onos", n, rate=9000.0)
        rows.append([f"ONOS n={n}", f"{point.packet_in_rate_per_s:.0f}",
                     f"{point.flow_mod_rate_per_s:.0f}"])
    for n in (1, 3, 7):
        point = measure("odl", n, rate=1200.0)
        rows.append([f"ODL  n={n}", f"{point.packet_in_rate_per_s:.0f}",
                     f"{point.flow_mod_rate_per_s:.0f}"])

    print(format_table(
        "Peak cluster throughput under tcpreplay load (Fig 4f / 4g shape)",
        ["cluster", "PACKET_IN/s", "FLOW_MOD/s"], rows))

    onos = [float(r[2]) for r in rows[:3]]
    odl = [float(r[2]) for r in rows[3:]]
    print("\nONOS: clustering costs "
          f"{100 * (1 - min(onos) / max(onos)):.0f}% at n=7 (paper: <8%).")
    print("ODL:  clustering costs "
          f"{100 * (1 - odl[2] / odl[0]):.0f}% at n=7 "
          "(paper: ~800 -> ~140 FLOW_MOD/s).")


if __name__ == "__main__":
    main()
