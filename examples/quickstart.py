#!/usr/bin/env python3
"""Quickstart: a JURY-enhanced ONOS cluster validating live traffic.

Builds a 5-node ONOS-like cluster on a linear 8-switch topology, deploys
JURY with k=4 secondary replicas, drives some host traffic, and prints what
the out-of-band validator observed — response counts, consensus decisions,
and detection-time statistics.

Run:  python examples/quickstart.py
"""

from repro.api import Jury
from repro.config import JuryConfig
from repro.harness import format_table
from repro.workloads import TrafficDriver


def main() -> None:
    # One call wires everything: simulator, topology, controllers, store,
    # per-switch OVS proxies, and the JURY deployment (replicators on every
    # proxy, a module in every controller, the out-of-band validator).
    experiment = Jury.experiment(JuryConfig(
        kind="onos",        # eventually consistent, reactive forwarding
        n=5,                # controller replicas c1..c5
        k=4,                # replicate each trigger to 4 secondaries
        switches=8,         # linear Mininet-style chain, one host each
        seed=7,
        timeout_ms=250.0,   # validation timeout (per-trigger timer)
    ))

    # Let LLDP discovery settle and teach every host to the cluster.
    experiment.warmup()

    # Drive fresh TCP connections between random host pairs for one second.
    driver = TrafficDriver(
        experiment.sim, experiment.topology,
        packet_in_rate_per_s=1500.0, duration_ms=1000.0)
    driver.start()
    experiment.begin_window()
    experiment.run(1600.0)  # traffic window + drain time

    validator = experiment.validator
    stats = experiment.detection_stats()
    throughput = experiment.throughput()

    print(format_table(
        "JURY quickstart — 5-node ONOS cluster, k=4",
        ["metric", "value"],
        [
            ["connections opened", driver.connections_opened],
            ["PACKET_IN rate (measured)",
             f"{throughput.packet_in_rate_per_s:.0f}/s"],
            ["FLOW_MOD rate (measured)",
             f"{throughput.flow_mod_rate_per_s:.0f}/s"],
            ["responses received by validator", validator.responses_received],
            ["triggers validated", validator.triggers_decided],
            ["alarms raised", validator.triggers_alarmed],
            ["full-consensus detections", stats.count],
            ["median detection time", f"{stats.median:.1f} ms"],
            ["95th-percentile detection time", f"{stats.p95:.1f} ms"],
        ]))

    overheads = experiment.overhead_mbps()
    print()
    print(format_table(
        "Network overhead over the measurement window",
        ["traffic class", "Mbps"],
        sorted(overheads.items())))

    assert validator.triggers_alarmed == 0, "benign traffic must not alarm"
    print("\nOK: all controller actions validated, no false alarms.")


if __name__ == "__main__":
    main()
